"""E9 — Section 6's complexity claim for the modified enumerator.

"In terms of optimization cost, considering probes is analogous to
considering additional access methods.  Therefore, the asymptotic
complexity of optimization is bounded by O(n^2 2^(n-1)), same as in the
traditional enumeration."

Assertions:
- optimizer effort (2-way join tasks) grows no faster than the
  O(n^2 2^(n-1)) envelope;
- the PrL enumerator's overhead over the traditional one is a bounded
  constant factor ("the increase in the cost of optimization must be
  moderate").
"""

from __future__ import annotations

import pytest

from repro.bench import enumeration_report
from repro.bench.reporting import ascii_table

RELATION_COUNTS = [1, 2, 3, 4, 5]


@pytest.fixture(scope="module")
def report():
    return enumeration_report(
        RELATION_COUNTS, spaces=("traditional", "prl", "bushy")
    )


def test_enumeration_regenerate(benchmark, report):
    benchmark.pedantic(
        lambda: enumeration_report([3]), rounds=1, iterations=1
    )
    print()
    rows = [
        [
            entry["relations"],
            entry["space"],
            entry["join_tasks"],
            entry["plans_considered"],
            entry["subsets"],
            round(entry["seconds"] * 1000, 1),
        ]
        for entry in report
    ]
    print(
        ascii_table(
            ["n relations", "space", "join tasks", "plans", "subsets", "ms"],
            rows,
            title="E9: enumeration effort vs number of relations",
        )
    )


def _tasks(report, space):
    return {
        entry["relations"]: entry["join_tasks"]
        for entry in report
        if entry["space"] == space
    }


def test_effort_within_complexity_envelope(report):
    """join_tasks(n) <= C * n^2 * 2^(n-1) for a small constant C."""
    for space in ("traditional", "prl"):
        tasks = _tasks(report, space)
        for n, count in tasks.items():
            units = n + 1  # the text source is one more unit in the order
            envelope = units * units * (2 ** (units - 1))
            assert count <= 8 * envelope, (space, n, count, envelope)


def test_prl_overhead_is_moderate(report):
    """PrL costs at most a constant factor over traditional enumeration."""
    traditional = _tasks(report, "traditional")
    prl = _tasks(report, "prl")
    for n in traditional:
        assert prl[n] <= 12 * max(traditional[n], 1), (
            n,
            prl[n],
            traditional[n],
        )


def test_effort_grows_with_relations(report):
    tasks = _tasks(report, "prl")
    counts = [tasks[n] for n in sorted(tasks)]
    assert all(a < b for a, b in zip(counts, counts[1:]))
