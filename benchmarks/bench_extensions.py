"""Benchmarks for the Section 8 extensions (implemented future work).

- **Batched invocations** (B+TS): invocation cost collapses by the batch
  factor while preserving per-tuple answer correspondence.
- **Published statistics**: predicate statistics from the text system's
  exported vocabulary catalogue cost zero searches, vs one search per
  sampled value.
- **Adaptive execution**: with deliberately wrong statistics the fetch
  guard aborts the mis-chosen plan and the fallback still answers the
  query.
"""

from __future__ import annotations


from repro.bench.reporting import ascii_table
from repro.core.adaptive import execute_adaptively
from repro.core.inputs import build_cost_inputs
from repro.core.joinmethods import BatchedTupleSubstitution, TupleSubstitution
from repro.core.joinmethods.base import JoinContext
from repro.gateway.client import TextClient
from repro.gateway.published import published_predicate_statistics
from repro.gateway.sampling import sample_predicate_statistics
from repro.textsys.batching import BatchingTextServer


def test_batched_ts_vs_plain_ts(scenario, benchmark):
    """B+TS cuts Q3's invocation bill by ~the batch factor."""
    query = scenario.q3()
    plain_context = scenario.context()
    plain = TupleSubstitution().execute(query, plain_context)

    batching_server = BatchingTextServer(scenario.server, batch_limit=50)
    rows = []
    batched_costs = {}
    for limit in (5, 20, 50):
        context = JoinContext(
            scenario.catalog,
            TextClient(batching_server, constants=scenario.constants),
        )
        execution = BatchedTupleSubstitution(batch_limit=limit).execute(
            query, context
        )
        assert execution.result_keys() == plain.result_keys()
        batched_costs[limit] = execution.cost
        rows.append(
            [f"B+TS (batch={limit})", execution.cost.searches,
             round(execution.cost.total, 2)]
        )
    rows.insert(0, ["TS", plain.cost.searches, round(plain.cost.total, 2)])
    assert batched_costs[50].total < plain.cost.total / 5
    assert batched_costs[50].searches < batched_costs[5].searches

    benchmark.pedantic(
        lambda: BatchedTupleSubstitution().execute(
            query,
            JoinContext(
                scenario.catalog,
                TextClient(batching_server, constants=scenario.constants),
            ),
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        ascii_table(
            ["method", "invocations", "cost (s)"],
            rows,
            title="Extension: batched invocations (Section 8)",
        )
    )


def test_published_statistics_eliminate_probes(scenario, benchmark):
    """Published frequencies give the same stats with zero invocations."""
    table = scenario.catalog.table("project")
    values = table.column_values("member")

    sampling_client = scenario.client()
    sampled = sample_predicate_statistics(
        sampling_client, "project.member", "author", values, sample_size=30
    )
    sampled_invocations = sampling_client.ledger.searches

    published = benchmark(
        published_predicate_statistics,
        scenario.server,
        "project.member",
        "author",
        values,
    )
    assert sampled_invocations == 30
    # The published path is exact over ALL values and sends nothing.
    assert 0 <= published.selectivity <= 1
    print()
    print(
        ascii_table(
            ["path", "invocations", "s", "f"],
            [
                ["sampling (30 values)", sampled_invocations,
                 round(sampled.selectivity, 3), round(sampled.fanout, 3)],
                ["published catalogue", 0,
                 round(published.selectivity, 3), round(published.fanout, 3)],
            ],
            title="Extension: published statistics vs sampling",
        )
    )


def test_adaptive_execution_survives_bad_statistics(scenario, benchmark):
    """With truthful stats: no fallback.  With lying stats: the guard may
    abort the first choice, yet the query still completes correctly."""
    from repro.gateway.statistics import (
        PredicateStatistics,
        TextStatisticsRegistry,
    )

    query = scenario.q4()
    truthful_inputs = build_cost_inputs(query, scenario.context())
    context = scenario.context()
    honest = execute_adaptively(query, context, truthful_inputs)
    assert not honest.fell_back

    registry = TextStatisticsRegistry()
    registry.put(PredicateStatistics("student.advisor", "author", 0.01, 0.001))
    registry.put(PredicateStatistics("student.name", "author", 0.01, 0.001))
    lying_inputs = build_cost_inputs(
        query, scenario.context(), registry=registry
    )
    context = scenario.context()
    adaptive = benchmark.pedantic(
        lambda: execute_adaptively(
            query, scenario.context(), lying_inputs, safety_factor=0.001
        ),
        rounds=1,
        iterations=1,
    )
    reference = TupleSubstitution().execute(query, scenario.context())
    assert adaptive.execution.result_keys() == reference.result_keys()
    print()
    rows = [
        [attempt.method, "aborted" if attempt.aborted else "completed",
         round(attempt.predicted_cost, 2)]
        for attempt in adaptive.attempts
    ]
    print(
        ascii_table(
            ["attempt", "outcome", "predicted (s)"],
            rows,
            title="Extension: adaptive execution under bad statistics",
        )
    )
