"""Remote transport: concurrent batch dispatch vs serial, retry overhead.

The acceptance benchmark for the fault-injecting network layer:

- on the ``wan`` profile (tens of milliseconds per frame, reliable) a
  pooled ``search_batch`` must beat serial dispatch by at least 2x wall
  clock at pool size 8, while returning exactly the in-process answers;
- on the ``flaky`` profile every query must still come back identical,
  with the wasted simulated seconds visible in ``seconds_retried`` and
  never in the priced ledger ``total``.

Wall-clock seconds (real sleeps) and simulated seconds (what the
accounting charges) are reported side by side.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.reporting import ascii_table, counter_delta_rows
from repro.gateway.client import TextClient
from repro.remote import RemoteTextTransport
from repro.textsys.query import TermQuery

POOL_SIZE = 8
QUERY_COUNT = 32


@pytest.fixture(scope="module")
def queries(scenario):
    """32 single-term title searches drawn from the corpus vocabulary."""
    vocabulary = scenario.server.index.vocabulary("title")
    step = max(1, len(vocabulary) // QUERY_COUNT)
    terms = vocabulary[::step][:QUERY_COUNT]
    assert len(terms) == QUERY_COUNT
    return [TermQuery("title", term) for term in terms]


@pytest.fixture(scope="module")
def expected(scenario, queries):
    return [scenario.server.search(query).docids for query in queries]


def timed_batch(transport, queries):
    started = time.perf_counter()
    results = transport.search_batch(queries)
    return time.perf_counter() - started, results


def test_concurrent_dispatch_beats_serial(scenario, queries, expected, benchmark):
    # Full wan latency (20ms real per frame): the pool overlaps the wire
    # time while server-side evaluation stays serialized, so the measured
    # speedup is the honest Amdahl number, not a sleep artefact.
    serial = RemoteTextTransport(
        scenario.server, profile="wan", seed=7, pool_size=1
    )
    pooled = RemoteTextTransport(
        scenario.server, profile="wan", seed=7, pool_size=POOL_SIZE
    )
    try:
        serial_seconds, serial_results = timed_batch(serial, queries)
        pooled_seconds, pooled_results = benchmark.pedantic(
            lambda: timed_batch(pooled, queries), rounds=1, iterations=1
        )
    finally:
        pooled.close()

    assert [r.docids for r in serial_results] == expected
    assert [r.docids for r in pooled_results] == expected

    speedup = serial_seconds / pooled_seconds
    print()
    print(
        ascii_table(
            ["dispatch", "wall (s)", "simulated wire (s)", "frames"],
            [
                [
                    "serial",
                    round(serial_seconds, 3),
                    round(serial.channel.stats.simulated_seconds, 3),
                    serial.stats.frames_sent,
                ],
                [
                    f"pool={POOL_SIZE}",
                    round(pooled_seconds, 3),
                    round(pooled.channel.stats.simulated_seconds, 3),
                    pooled.stats.frames_sent,
                ],
            ],
            title=f"search_batch of {QUERY_COUNT} queries on 'wan' "
            f"(speedup {speedup:.1f}x)",
        )
    )
    assert speedup >= 2.0, f"pool={POOL_SIZE} only {speedup:.2f}x over serial"
    # Both dispatches paid the same simulated wire time: concurrency
    # compresses wall clock, never the accounted cost.
    assert pooled.channel.stats.simulated_seconds == pytest.approx(
        serial.channel.stats.simulated_seconds, rel=0.25
    )


def test_flaky_profile_identical_answers_with_visible_waste(
    scenario, queries, expected
):
    transport = RemoteTextTransport(
        scenario.server, profile="flaky", seed=7, time_scale=0.0
    )
    client = TextClient(transport)
    before = scenario.server.counters.snapshot()

    results = [client.search(query) for query in queries]
    assert [r.docids for r in results] == expected

    ledger = client.ledger
    assert ledger.searches == QUERY_COUNT
    assert ledger.seconds_retried > 0.0
    # Priced total covers answered work only (the Section 4.1 identity).
    constants = ledger.constants
    assert ledger.total == pytest.approx(
        constants.invocation * ledger.searches
        + constants.per_posting * ledger.postings_processed
        + constants.short_form * ledger.short_documents
    )

    print()
    print(
        ascii_table(
            ["server counter", "delta"],
            counter_delta_rows(before, scenario.server.counters),
            title="Server work during the flaky run",
        )
    )
    report = transport.report()
    print(
        f"retries={report['retries']}  failures={report['failures']}  "
        f"seconds_retried={report['seconds_retried']:.2f}  "
        f"breaker={report['breaker_state']}"
    )
    assert report["failures"] == 0  # retries absorbed every fault
