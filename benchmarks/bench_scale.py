"""Scale check: the substrate at 10x the canonical corpus.

Not a paper artifact — this keeps the engine honest as data grows:
indexing throughput, search latency, and the join methods' *counter*
scaling (invocations stay flat for RTP/SJ while TS grows linearly with
the relation), plus the [DH91] page-read accounting at volume.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.reporting import ascii_table
from repro.core.inputs import build_cost_inputs
from repro.core.joinmethods import (
    JoinContext,
    RelationalTextProcessing,
    SemiJoinRtp,
    TupleSubstitution,
)
from repro.core.optimizer.single_join import choose_join_method
from repro.core.query import TextJoinPredicate, TextJoinQuery, TextSelection
from repro.gateway.client import TextClient
from repro.relational.catalog import Catalog
from repro.relational.schema import Schema
from repro.relational.types import DataType
from repro.textsys.server import BooleanTextServer
from repro.workload.corpus import SyntheticCorpus
from repro.workload.vocabulary import reserved_pool

DOCUMENTS = 20_000
TUPLES = 2_000


@pytest.fixture(scope="module")
def big_world():
    rng = random.Random(99)
    corpus = SyntheticCorpus(DOCUMENTS, seed=100, vocabulary_size=4000)
    names = reserved_pool("big", 400, rng)
    corpus.plant_pool(names, "author", selectivity=0.3, conditional_fanout=3)
    hot_docs = corpus.plant_phrase("scalability study", "title", 120)
    corpus.plant_pool(
        names, "author", selectivity=0.05, conditional_fanout=1,
        within=list(hot_docs),
    )
    corpus.pad_authors(per_document=2, pool_size=1500)

    catalog = Catalog()
    table = catalog.create_table(
        "person", Schema.of(("name", DataType.VARCHAR), ("grp", DataType.VARCHAR))
    )
    for _ in range(TUPLES):
        table.insert([rng.choice(names), rng.choice(("a", "b"))])

    server = BooleanTextServer(corpus.build_store())
    query = TextJoinQuery(
        relation="person",
        join_predicates=(TextJoinPredicate("person.name", "author"),),
        text_selections=(TextSelection("scalability study", "title"),),
    )
    return catalog, server, query


def test_index_build_at_scale(benchmark):
    def build():
        corpus = SyntheticCorpus(DOCUMENTS, seed=100, vocabulary_size=4000)
        corpus.pad_authors(per_document=1, pool_size=500)
        return BooleanTextServer(corpus.build_store())

    server = benchmark.pedantic(build, rounds=1, iterations=1)
    assert server.document_count == DOCUMENTS


def test_search_latency_at_scale(big_world, benchmark):
    catalog, server, query = big_world
    result = benchmark(server.search, "TI='scalability study'")
    assert len(result) == 120


def test_method_counters_scale_as_predicted(big_world, benchmark):
    """TS invocations grow with distinct tuples; RTP and SJ stay at
    1 and ceil(N_K/(M-1)) respectively — at 10x scale."""
    catalog, server, query = big_world
    rows = []
    executions = {}
    for method in (TupleSubstitution(), RelationalTextProcessing(), SemiJoinRtp()):
        pages_before = server.index.pages_read
        context = JoinContext(catalog, TextClient(server))
        execution = method.execute(query, context)
        executions[method.name] = execution
        rows.append(
            [
                method.name,
                execution.cost.searches,
                execution.cost.short_documents,
                server.index.pages_read - pages_before,
                round(execution.cost.total, 1),
                round(execution.wall_seconds, 3),
            ]
        )
    sizes = {e.result_keys() for e in executions.values()}
    assert len({frozenset(s) for s in sizes}) == 1

    ts = executions["TS"]
    rtp = executions["RTP"]
    sj = executions["SJ+RTP"]
    distinct_names = len(
        {row["person.name"] for row in catalog.table("person").scan()}
    )
    assert ts.cost.searches == distinct_names
    assert rtp.cost.searches == 1
    assert sj.cost.searches == -(-distinct_names // (server.term_limit - 1))
    # Wall time stays interactive even at 10x scale.
    assert all(e.wall_seconds < 10 for e in executions.values())

    benchmark.pedantic(
        lambda: RelationalTextProcessing().execute(
            query, JoinContext(catalog, TextClient(server))
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        ascii_table(
            ["method", "invocations", "docs shipped", "pages read",
             "cost (s)", "wall (s)"],
            rows,
            title=f"Scale: D={DOCUMENTS} documents, N={TUPLES} tuples",
        )
    )


def test_optimizer_latency_at_scale(big_world, benchmark):
    catalog, server, query = big_world

    def optimize():
        inputs = build_cost_inputs(
            query, JoinContext(catalog, TextClient(server))
        )
        return choose_join_method(query, inputs)

    choice = benchmark.pedantic(optimize, rounds=1, iterations=1)
    assert choice.name in ("RTP", "SJ+RTP", "B+TS", "TS")
