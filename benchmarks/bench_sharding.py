"""Sharded scatter-gather: wall-clock speedup at bit-identical cost.

The acceptance benchmark for the sharded text service:

- at 4 shards on the ``wan`` profile with per-shard pool 4, a
  retrieve-heavy workload must beat the 1-shard deployment by at least
  2x wall clock.  The win comes from *routing*: a ``retrieve_many``
  splits its frame stream across shards, so each shard pays a quarter
  of the latency waves, and the shards run concurrently.  Scattered
  searches pay full per-shard wire time and do not speed up — which is
  exactly the paper's Section 4 story: invocation latency dominates,
  and only call *division* (not duplication) buys wall clock;
- the merged answers must be identical to the unsharded ones and the
  priced ``CostLedger.total`` bit-identical across shard counts — the
  cost model must not notice the deployment change.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.reporting import ascii_table
from repro.gateway.client import TextClient
from repro.remote import build_sharded_transport
from repro.textsys.query import TermQuery

POOL_SIZE = 4
SHARDS = 4
QUERY_COUNT = 32
RETRIEVE_COUNT = 240


@pytest.fixture(scope="module")
def queries(scenario):
    """32 single-term title searches drawn from the corpus vocabulary."""
    vocabulary = scenario.server.index.vocabulary("title")
    step = max(1, len(vocabulary) // QUERY_COUNT)
    terms = vocabulary[::step][:QUERY_COUNT]
    assert len(terms) == QUERY_COUNT
    return [TermQuery("title", term) for term in terms]


@pytest.fixture(scope="module")
def docids(scenario):
    """240 distinct docids: the retrieve-heavy half of the workload."""
    wanted = [document.docid for document in scenario.server.store]
    assert len(wanted) >= RETRIEVE_COUNT
    return wanted[:RETRIEVE_COUNT]


def make_transport(scenario, shards, time_scale):
    return build_sharded_transport(
        scenario.server,
        shards,
        profile="wan",
        seed=7,
        time_scale=time_scale,
        pool_size=POOL_SIZE,
    )


def run_workload(transport, queries, docids):
    started = time.perf_counter()
    results = transport.search_batch(queries)
    documents = transport.retrieve_many(docids)
    return time.perf_counter() - started, results, documents


def test_four_shards_beat_one_wall_clock(scenario, queries, docids, benchmark):
    # time_scale=1: real sleeps — the speedup must be honest wall clock.
    expected = [scenario.server.search(query).docids for query in queries]
    single = make_transport(scenario, 1, time_scale=1.0)
    sharded = make_transport(scenario, SHARDS, time_scale=1.0)
    try:
        single_seconds, single_results, single_documents = run_workload(
            single, queries, docids
        )
        sharded_seconds, sharded_results, sharded_documents = benchmark.pedantic(
            lambda: run_workload(sharded, queries, docids),
            rounds=1,
            iterations=1,
        )
    finally:
        single.close()
        sharded.close()

    # Same answers as the in-process server, in the same order.
    assert [r.docids for r in single_results] == expected
    assert [r.docids for r in sharded_results] == expected
    assert [d.docid for d in single_documents] == docids
    assert [d.docid for d in sharded_documents] == docids

    speedup = single_seconds / sharded_seconds
    print()
    print(
        ascii_table(
            ["deployment", "wall (s)", "frames", "calls"],
            [
                [
                    "1 shard",
                    round(single_seconds, 3),
                    single.stats.frames_sent,
                    single.stats.calls,
                ],
                [
                    f"{SHARDS} shards",
                    round(sharded_seconds, 3),
                    sharded.stats.frames_sent,
                    sharded.stats.calls,
                ],
            ],
            title=f"search_batch of {QUERY_COUNT} + retrieve_many of "
            f"{RETRIEVE_COUNT} on 'wan', pool {POOL_SIZE} "
            f"(speedup {speedup:.1f}x)",
        )
    )
    assert speedup >= 2.0, f"{SHARDS} shards only {speedup:.2f}x over 1"


def test_ledger_totals_bit_identical_across_shard_counts(scenario, queries, docids):
    """The deployment is invisible to the cost model (time_scale=0)."""
    totals = {}
    for shards in (1, 2, SHARDS):
        transport = make_transport(scenario, shards, time_scale=0.0)
        client = TextClient(transport)
        try:
            client.search_batch(queries)
            client.retrieve_many(docids[:40])
        finally:
            transport.close()
        totals[shards] = client.ledger.total
    assert totals[2] == totals[1]
    assert totals[SHARDS] == totals[1]
    print(f"\npriced total at 1/2/{SHARDS} shards: {totals[1]:.5f} (identical)")


def test_replica_failover_keeps_answers_identical(scenario, queries):
    """Dead primaries: every answer still correct, failovers visible."""
    from repro.remote import (
        RemoteTextTransport,
        RetryPolicy,
        ShardBackend,
        ShardedTextTransport,
    )
    from repro.remote.channel import FaultProfile
    from repro.textsys.server import BooleanTextServer
    from repro.textsys.sharding import partition_store

    expected = [scenario.server.search(query).docids for query in queries]
    corpus = partition_store(scenario.server.store, SHARDS)
    dead = FaultProfile("dead", error_rate=1.0)
    backends = []
    for shard_id, store in enumerate(corpus.stores):
        primary = RemoteTextTransport(
            BooleanTextServer(store),
            profile=dead,
            time_scale=0.0,
            retry=RetryPolicy(max_attempts=2, base_delay=0.001),
        )
        replica = RemoteTextTransport(
            BooleanTextServer(store), profile="wan", time_scale=0.0
        )
        backends.append(ShardBackend(shard_id, primary, [replica]))
    transport = ShardedTextTransport(corpus, backends)
    try:
        results = transport.search_batch(queries)
    finally:
        transport.close()
    assert [r.docids for r in results] == expected
    assert transport.failovers >= SHARDS
    print(f"\nfailovers={transport.failovers}  {transport!r}")
