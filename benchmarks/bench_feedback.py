"""Feedback-driven re-optimization: the estimator loop, measured.

The acceptance benchmark for :mod:`repro.core.feedback` plus the
re-optimizing guard in :mod:`repro.core.adaptive`, on the skewed
stale-statistics Q4 workload of
:mod:`repro.bench.feedback_loop`:

- **the loop closes**: run 1 plans from drifted priors, picks the
  guarded P+RTP, aborts at its miscalibrated fetch cap, re-optimizes
  mid-query, and lands on an expensive fallback; run 2 blends the
  recorded observations and must pick a *different, cheaper* method up
  front — lower ``CostLedger`` total, zero aborts, identical result
  pairs;
- **charge identity** (DESIGN invariant 14): executing the very same
  blended plan with feedback recording attached and with no feedback at
  all must produce bit-identical attempt spends, ledger totals, and
  result pairs — feedback changes plan *choice*, never the accounting
  of the plan that runs;
- **persistence round-trip**: the store that learned run 1's evidence
  must survive a save/load cycle payload-identical, and the reloaded
  store must reproduce the exact same run-2 plan flip.

Run standalone for a prior-weight sweep, or ``--smoke`` for the CI
sanity pass (flip + identity asserted).  ``REPRO_ENGINE_MODE=reference``
re-runs everything over the reference text-engine oracle.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict

import pytest

from repro.bench.feedback_loop import (
    feedback_loop_report,
    render_report,
    stale_statistics_registry,
)
from repro.bench.reporting import ascii_table
from repro.core.adaptive import execute_adaptively
from repro.core.feedback import FeedbackStore
from repro.core.inputs import build_cost_inputs
from repro.workload import build_default_scenario


def assert_loop_closed(report: Dict[str, Any]) -> None:
    run1, run2 = report["run1"], report["run2"]
    assert any(a["aborted"] for a in run1["attempts"]), (
        "run 1 must hit the guard: " + repr(run1["attempts"])
    )
    assert run1["reoptimizations"] >= 1
    assert run2["winner"] != run1["winner"], (
        f"run 2 re-picked {run2['winner']!r}"
    )
    assert not any(a["aborted"] for a in run2["attempts"])
    assert run2["total_cost"] < run1["total_cost"], (
        f"run 2 cost {run2['total_cost']:.3f} not below "
        f"run 1 cost {run1['total_cost']:.3f}"
    )
    assert report["results_identical"], "the flip changed the answer"


# ----------------------------------------------------------------------
# pytest entry points (CI benchmarks job)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def loop_report():
    return feedback_loop_report()


def test_run2_flips_to_a_cheaper_plan(loop_report):
    assert_loop_closed(loop_report)


def test_feedback_recording_never_changes_charges(loop_report):
    identity = loop_report["identity"]
    assert identity["identical"], (
        f"invariant 14 violated: {identity['recorded_total']!r} with "
        f"feedback vs {identity['silent_total']!r} without"
    )


def test_reloaded_store_reproduces_the_flip(tmp_path, loop_report):
    path = str(tmp_path / "feedback.json")
    store = loop_report["store"]
    store.save(path)
    reloaded = FeedbackStore.load(path)
    assert reloaded == store

    scenario = build_default_scenario(seed=7)
    query = scenario.q4()
    context = scenario.context()
    inputs = build_cost_inputs(
        query, context, registry=stale_statistics_registry(), feedback=reloaded
    )
    execution = execute_adaptively(query, context, inputs)
    assert execution.execution.method == loop_report["run2"]["winner"]
    assert not any(a.aborted for a in execution.attempts)


# ----------------------------------------------------------------------
# standalone entry point (full measurement / CI smoke)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="single default run; flip and identity asserted",
    )
    options = parser.parse_args(argv)

    if options.smoke:
        report = feedback_loop_report(seed=options.seed)
        print(render_report(report))
        assert_loop_closed(report)
        assert report["identity"]["identical"]
        print("smoke OK: plan flipped to a cheaper method, identity exact")
        return 0

    rows = []
    for prior_weight in (0.25, 0.5, 1.0, 4.0, 16.0):
        report = feedback_loop_report(
            seed=options.seed, prior_weight=prior_weight
        )
        run1, run2 = report["run1"], report["run2"]
        rows.append(
            [
                prior_weight,
                run1["winner"],
                round(run1["total_cost"], 2),
                run2["winner"],
                round(run2["total_cost"], 2),
                "yes" if report["flipped"] and report["cheaper"] else "no",
                "OK" if report["identity"]["identical"] else "VIOLATED",
            ]
        )
    print(
        ascii_table(
            ["prior weight", "run1 winner", "run1 (s)", "run2 winner",
             "run2 (s)", "flip", "invariant 14"],
            rows,
            title="Feedback loop vs prior-vs-observed weighting (Q4, "
            "stale statistics)",
        )
    )
    print(
        "low prior weights trust one abort's evidence enough to flip; "
        "high weights need more observations before the estimate moves"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
