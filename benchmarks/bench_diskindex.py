"""Disk-backed index at scale: build throughput, bounded RSS, cache effect.

The acceptance benchmark for :mod:`repro.textsys.diskindex`:

- **bounded build**: stream a synthetic corpus (default one million
  documents) through :class:`DiskIndexBuilder` — documents are never
  materialized in RAM, sorted segment runs spill to disk, and the final
  index is one compact file of delta + group-varint posting blocks.
  Peak RSS for build *plus* querying must stay under a configurable
  budget (default 512 MB);
- **cold/warm querying**: the same query set is run twice against the
  file through a bounded block cache (``io_mode="read"`` so every
  physical access is an explicit syscall, not a page fault): charged
  page reads are identical in both passes while physical block fetches
  collapse onto the cache;
- **charge identity** (DESIGN invariant 13): at a comparison size the
  same queries run against the in-memory :class:`InvertedIndex` —
  docids, ``postings_processed``, and ``pages_read`` must be
  bit-identical to the disk engine's.

Run standalone for the full million-document measurement, or
``--smoke`` for a seconds-long CI pass (identity asserted, RSS
reported against the same budget).
"""

from __future__ import annotations

import argparse
import resource
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Tuple

from repro.bench.reporting import ascii_table
from repro.textsys.diskindex import DiskIndexBuilder, DiskInvertedIndex
from repro.textsys.documents import DocumentStore
from repro.textsys.engine import evaluate
from repro.textsys.inverted_index import InvertedIndex
from repro.textsys.parser import parse_search
from repro.workload import iter_synthetic_documents

#: The query mix: single terms, conjunctions steered by the rewriter
#: onto the skip-driven galloping path, a disjunction, and a negation.
QUERIES = [
    "TI='algorithm'",
    "AB='database' and AB='query'",
    "AB='retrieval' and AB='parallel' and AB='index'",
    "TI='system' or AB='cache'",
    "AB='protocol' and not TI='network'",
]

#: Corpus size for the in-memory comparison (full size would defeat the
#: point of the disk index).
COMPARISON_DOCS = 20_000


def peak_rss_mb() -> float:
    """Lifetime peak resident set of this process, in MB (Linux: KiB)."""
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # bytes on macOS
        return rss / (1024 * 1024)
    return rss / 1024


def build_index(
    docs: int, path: Path, *, seed: int, builder_budget_mb: int
) -> Dict[str, float]:
    builder = DiskIndexBuilder(
        ["title", "abstract"],
        path,
        memory_budget_mb=builder_budget_mb,
    )
    started = time.perf_counter()
    count = builder.add_documents(iter_synthetic_documents(docs, seed=seed))
    builder.finish()
    seconds = time.perf_counter() - started
    return {
        "documents": count,
        "seconds": round(seconds, 2),
        "docs_per_s": round(count / seconds) if seconds else 0,
        "file_mb": round(path.stat().st_size / 1e6, 2),
        "segments": builder.segments_spilled,
    }


def query_pass(index: DiskInvertedIndex) -> Dict[str, float]:
    """One pass over the query mix; returns charges + physical deltas."""
    io_before = index.io_stats()
    pages_before = index.pages_read
    started = time.perf_counter()
    matches = postings = 0
    for expression in QUERIES:
        outcome = evaluate(index, parse_search(expression))
        matches += outcome.doc_count()
        postings += outcome.postings_processed
    seconds = time.perf_counter() - started
    io_after = index.io_stats()
    return {
        "ms": round(seconds * 1000, 1),
        "matches": matches,
        "postings": postings,
        "pages": index.pages_read - pages_before,
        "fetches": io_after["block_fetches"] - io_before["block_fetches"],
        "bytes": io_after["bytes_read"] - io_before["bytes_read"],
    }


def cold_warm_table(
    path: Path, cache_mb: float
) -> Tuple[List[Tuple[str, Dict]], Dict]:
    """(cold, warm) passes through one bounded cache, plus cache stats."""
    with DiskInvertedIndex(
        path, cache_budget=int(cache_mb * 1024 * 1024), io_mode="read"
    ) as index:
        cold = query_pass(index)
        warm = query_pass(index)
        stats = index.io_stats()["cache"]
    return [("cold", cold), ("warm", warm)], stats


def assert_charge_identity(
    docs: int, tmp: Path, *, seed: int
) -> Dict[str, int]:
    """Disk vs in-memory engine on an identical corpus: invariant 13."""
    store = DocumentStore(["title", "abstract"], short_fields=["title"])
    for document in iter_synthetic_documents(docs, seed=seed):
        store.add(document)
    memory = InvertedIndex(store)

    path = tmp / "comparison.idx"
    builder = DiskIndexBuilder(["title", "abstract"], path)
    builder.add_documents(iter(store))
    builder.finish()

    with DiskInvertedIndex(path, io_mode="read") as disk:
        for expression in QUERIES:
            node = parse_search(expression)
            expected = evaluate(memory, node)
            actual = evaluate(disk, node)
            assert list(actual.postings.doc_array) == list(
                expected.postings.doc_array
            ), expression
            assert (
                actual.postings_processed == expected.postings_processed
            ), expression
        assert disk.pages_read == memory.pages_read
        return {"pages": disk.pages_read, "documents": docs}


def report(build: Dict, passes, cache_stats, rss_mb: float, budget_mb: int):
    print(
        ascii_table(
            ["documents", "seconds", "docs/s", "file MB", "spilled runs"],
            [[
                build["documents"],
                build["seconds"],
                build["docs_per_s"],
                build["file_mb"],
                build["segments"],
            ]],
            title="streamed build",
        )
    )
    print(
        ascii_table(
            ["pass", "ms", "matches", "postings", "pages", "fetches", "bytes"],
            [
                [label] + [outcome[key] for key in (
                    "ms", "matches", "postings", "pages", "fetches", "bytes"
                )]
                for label, outcome in passes
            ],
            title="query mix, cold vs warm block cache (io=read)",
        )
    )
    cold, warm = (outcome for _, outcome in passes)
    print(
        f"charges identical across passes: pages {cold['pages']} == "
        f"{warm['pages']}, postings {cold['postings']} == {warm['postings']}"
    )
    print(
        f"cache: {cache_stats['hits']} hits / {cache_stats['misses']} misses "
        f"({cache_stats['hit_rate']:.0%}), {cache_stats['evictions']} evictions"
    )
    print(f"peak RSS {rss_mb:.0f} MB (budget {budget_mb} MB)")


# ----------------------------------------------------------------------
# pytest entry points (CI benchmarks job)
# ----------------------------------------------------------------------
def test_disk_engine_charge_identical_to_memory(tmp_path):
    oracle = assert_charge_identity(2_000, tmp_path, seed=7)
    assert oracle["pages"] > 0


def test_warm_pass_same_charges_fewer_fetches(tmp_path):
    path = tmp_path / "bench.idx"
    builder = DiskIndexBuilder(["title", "abstract"], path)
    builder.add_documents(iter_synthetic_documents(2_000, seed=7))
    builder.finish()
    passes, stats = cold_warm_table(path, cache_mb=8)
    cold, warm = (outcome for _, outcome in passes)
    assert warm["pages"] == cold["pages"]
    assert warm["postings"] == cold["postings"]
    assert warm["matches"] == cold["matches"]
    assert warm["fetches"] <= cold["fetches"]
    assert stats["hits"] > 0


# ----------------------------------------------------------------------
# standalone entry point
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--docs",
        type=int,
        default=1_000_000,
        help="corpus size (default one million)",
    )
    parser.add_argument(
        "--budget-mb",
        type=int,
        default=512,
        help="peak-RSS budget asserted over build + query (default 512)",
    )
    parser.add_argument(
        "--builder-budget-mb",
        type=int,
        default=128,
        help="posting-buffer spill threshold inside the builder",
    )
    parser.add_argument("--cache-mb", type=float, default=32.0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny corpus; identity asserted, RSS reported in seconds",
    )
    options = parser.parse_args(argv)
    docs = 5_000 if options.smoke else options.docs
    comparison = min(docs, COMPARISON_DOCS)

    with tempfile.TemporaryDirectory() as tmp_name:
        tmp = Path(tmp_name)
        build = build_index(
            docs,
            tmp / "corpus.idx",
            seed=options.seed,
            builder_budget_mb=options.builder_budget_mb,
        )
        passes, cache_stats = cold_warm_table(
            tmp / "corpus.idx", options.cache_mb
        )
        cold, warm = (outcome for _, outcome in passes)
        assert warm["pages"] == cold["pages"]
        assert warm["postings"] == cold["postings"]

        oracle = assert_charge_identity(comparison, tmp, seed=options.seed)
        rss = peak_rss_mb()
        report(build, passes, cache_stats, rss, options.budget_mb)
        print(
            f"identity OK at {oracle['documents']} documents: disk engine "
            "bit-identical to in-memory (docids, postings, pages)"
        )
        if rss > options.budget_mb:
            print(
                f"FAIL: peak RSS {rss:.0f} MB exceeds the "
                f"{options.budget_mb} MB budget"
            )
            return 1
    print("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
