"""E4 — Figure 1(A): method costs as ``s1`` sweeps 0..1 (Q3 shape).

The paper: "Figure 1(A) shows the variation in the costs of the methods
as s1 changes from 0 to 1. ... When s1 is increased, more and more
probes succeed and thus P1+TS sends off more and more text searches and
becomes more expensive.  Thus P1+TS becomes more expensive and SJ+RTP is
the optimal plan."

Shape assertions:
- P1+TS cost is monotonically increasing in s1;
- at low s1 the probing method beats SJ+RTP, at high s1 SJ+RTP wins
  (a crossover exists);
- TS is essentially flat in s1.
"""

from __future__ import annotations

import pytest

from repro.bench import fig1a_series
from repro.bench.reporting import ascii_table

S1_VALUES = [round(i / 20, 2) for i in range(21)]


@pytest.fixture(scope="module")
def series():
    return fig1a_series(S1_VALUES)


def test_fig1a_regenerate(benchmark, series):
    benchmark.pedantic(lambda: fig1a_series(S1_VALUES), rounds=1, iterations=1)
    print()
    rows = [
        [s1] + [round(series[name][index], 1) for name in series]
        for index, s1 in enumerate(S1_VALUES)
    ]
    print(
        ascii_table(
            ["s1"] + list(series),
            rows,
            title="E4: Figure 1(A) — cost vs s1 (Q3 shape)",
        )
    )


def test_p1_ts_monotone_in_s1(series):
    costs = series["P1+TS"]
    assert all(a <= b + 1e-9 for a, b in zip(costs, costs[1:]))


def test_crossover_exists(series):
    p_ts = series["P1+TS"]
    sj = series["SJ+RTP"]
    # P1+TS wins somewhere at low s1...
    assert any(p < s for p, s in zip(p_ts[1:8], sj[1:8]))
    # ...and loses at s1 = 1 (SJ+RTP is optimal at high s1).
    assert p_ts[-1] > sj[-1]


def test_ts_flat_in_s1(series):
    costs = series["TS"]
    assert max(costs) - min(costs) < 0.05 * max(costs)


def test_probing_beats_ts_at_moderate_s1(series):
    index = S1_VALUES.index(0.15)
    assert series["P1+TS"][index] < series["TS"][index]
