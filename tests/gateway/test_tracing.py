"""Unit tests for foreign-call tracing (spans, phases, summaries)."""

import pytest

from repro.gateway.cache import GatewayCache
from repro.gateway.client import TextClient
from repro.gateway.tracing import UNPHASED, CallTracer, format_trace


class TestCallTracer:
    def test_disabled_tracer_drops_spans(self):
        tracer = CallTracer(enabled=False)
        assert tracer.record("search", "x", 1, 2, 3.0) is None
        assert tracer.spans == []

    def test_phase_attribution_nests(self):
        tracer = CallTracer()
        assert tracer.current_phase == UNPHASED
        with tracer.phase("probe"):
            tracer.record("probe", "a", 0, 0, 1.0)
            with tracer.phase("TS"):
                assert tracer.current_phase == "TS"
                tracer.record("search", "b", 0, 0, 1.0)
            tracer.record("probe", "c", 0, 0, 1.0)
        assert [span.phase for span in tracer.spans] == ["probe", "TS", "probe"]

    def test_phase_stack_survives_exceptions(self):
        tracer = CallTracer()
        with pytest.raises(ValueError):
            with tracer.phase("TS"):
                raise ValueError("boom")
        assert tracer.current_phase == UNPHASED

    def test_hit_rate_and_summary(self):
        tracer = CallTracer()
        tracer.record("search", "a", 2, 10, 3.0)
        tracer.record("search", "a", 2, 10, 0.0, saved=3.0, cache_hit=True)
        tracer.record("retrieve", "d1", 1, 0, 4.0)
        summary = tracer.summary()
        assert summary["spans"] == 3
        assert summary["by_kind"]["search"] == 2
        assert summary["by_kind"]["retrieve"] == 1
        assert summary["cache_hits"] == 1
        assert summary["hit_rate"] == pytest.approx(1 / 3)
        assert summary["cost"] == pytest.approx(7.0)
        assert summary["seconds_saved"] == pytest.approx(3.0)

    def test_by_phase_aggregates(self):
        tracer = CallTracer()
        with tracer.phase("TS"):
            tracer.record("search", "a", 0, 0, 2.0)
            tracer.record("search", "b", 0, 0, 0.0, saved=2.0, cache_hit=True)
        entry = tracer.by_phase()["TS"]
        assert entry == {"calls": 2, "hits": 1, "cost": 2.0, "saved": 2.0}


class TestClientIntegration:
    def test_spans_record_searches_probes_and_retrievals(self, tiny_server):
        tracer = CallTracer()
        client = TextClient(tiny_server, tracer=tracer)
        client.search("TI='belief'")
        client.probe("TI='zzz'")
        client.retrieve("d1")
        assert [span.kind for span in tracer.spans] == [
            "search", "probe", "retrieve"
        ]
        assert tracer.spans[0].expression == "title='belief'"
        assert tracer.spans[0].cost > 0

    def test_trace_phase_labels_client_calls(self, tiny_server):
        tracer = CallTracer()
        client = TextClient(tiny_server, tracer=tracer)
        with client.trace_phase("scan"):
            client.search("TI='belief'")
        client.search("TI='systems'")
        assert tracer.spans[0].phase == "scan"
        assert tracer.spans[1].phase == UNPHASED

    def test_cache_hits_are_flagged(self, tiny_server):
        tracer = CallTracer()
        client = TextClient(tiny_server, cache=GatewayCache(), tracer=tracer)
        client.search("TI='belief'")
        client.search("TI='belief'")
        assert [span.cache_hit for span in tracer.spans] == [False, True]
        assert tracer.spans[1].cost == 0.0
        assert tracer.spans[1].saved == pytest.approx(tracer.spans[0].cost)

    def test_call_log_is_a_view_over_the_trace(self, tiny_server):
        client = TextClient(tiny_server, log_calls=True)
        client.search("TI='belief'")
        client.retrieve("d1")
        assert len(client.tracer.spans) == 2
        assert len(client.call_log) == 1  # retrievals are not search calls
        assert client.call_log[0].expression == "title='belief'"

    def test_reset_accounting_clears_the_trace(self, tiny_server):
        client = TextClient(tiny_server, log_calls=True)
        client.search("TI='belief'")
        client.reset_accounting()
        assert client.tracer.spans == []


class TestExecutionPhases:
    def test_ts_join_spans_carry_the_ts_phase(self, scenario):
        from repro.core.joinmethods import TupleSubstitution

        tracer = CallTracer()
        context = scenario.context(tracer=tracer)
        TupleSubstitution().execute(scenario.query("q3"), context)
        assert tracer.spans
        assert {span.phase for span in tracer.spans} == {"TS"}

    def test_probe_method_mixes_probe_and_ts_phases(self, scenario):
        from repro.core.joinmethods import ProbeTupleSubstitution

        query = scenario.query("q3")
        tracer = CallTracer()
        context = scenario.context(tracer=tracer)
        ProbeTupleSubstitution((query.join_columns[0],)).execute(query, context)
        phases = {span.phase for span in tracer.spans}
        assert phases == {"probe", "TS"}
        assert all(
            span.kind == "probe"
            for span in tracer.spans
            if span.phase == "probe"
        )

    def test_semijoin_rtp_uses_the_sj_batch_phase(self, scenario):
        from repro.core.joinmethods import SemiJoinRtp

        tracer = CallTracer()
        context = scenario.context(tracer=tracer)
        SemiJoinRtp().execute(scenario.query("q1"), context)
        assert "SJ-batch" in {span.phase for span in tracer.spans}


def test_format_trace_renders_summary_and_spans():
    tracer = CallTracer()
    with tracer.phase("TS"):
        tracer.record("search", "title='belief'", 2, 10, 3.0)
        tracer.record(
            "search", "title='belief'", 2, 10, 0.0, saved=3.0, cache_hit=True
        )
    text = format_trace(tracer)
    assert "2 foreign calls" in text
    assert "hit rate 50%" in text
    assert "[TS]" in text
    assert "HIT" in text
    assert "title='belief'" in text


def test_format_trace_elides_old_spans():
    tracer = CallTracer()
    for index in range(30):
        tracer.record("search", f"q{index}", 0, 0, 1.0)
    text = format_trace(tracer, limit=5)
    assert "25 earlier spans elided" in text
    assert "q29" in text
    assert "#4 " not in text
