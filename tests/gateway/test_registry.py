"""The backend registry: per-backend charge attribution (invariant 15)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GatewayError
from repro.gateway.costs import PAPER_CONSTANTS, VECTOR_CONSTANTS, CostConstants
from repro.gateway.registry import BackendRegistry
from repro.textsys.documents import DocumentStore
from repro.textsys.server import BooleanTextServer
from repro.textsys.vector import VectorQuery
from repro.textsys.vectorserver import VectorTextServer


def make_store() -> DocumentStore:
    store = DocumentStore(
        ["title", "abstract"], short_fields=["title", "abstract"]
    )
    store.add_record("d1", title="belief update", abstract="belief revision")
    store.add_record("d2", title="query plans", abstract="join query plans")
    store.add_record("d3", title="text joins", abstract="ranked text search")
    return store


@pytest.fixture
def registry() -> BackendRegistry:
    store = make_store()
    registry = BackendRegistry()
    registry.register("mercury", BooleanTextServer(store))
    registry.register("vsim", VectorTextServer(store, "abstract"))
    return registry


class TestRegistration:
    def test_constants_default_by_source_kind(self, registry):
        assert registry.binding("mercury").constants == PAPER_CONSTANTS
        assert registry.binding("vsim").constants == VECTOR_CONSTANTS
        assert registry.binding("mercury").source_kind == "boolean"
        assert registry.binding("vsim").source_kind == "vector"

    def test_explicit_constants_override_the_default(self):
        registry = BackendRegistry()
        custom = CostConstants(invocation=9.0)
        binding = registry.register(
            "slow", BooleanTextServer(make_store()), custom
        )
        assert binding.constants is custom
        assert binding.ledger.constants is custom

    def test_duplicate_name_rejected(self, registry):
        with pytest.raises(GatewayError, match="already registered"):
            registry.register("mercury", BooleanTextServer(make_store()))

    def test_empty_name_rejected(self):
        with pytest.raises(GatewayError, match="non-empty"):
            BackendRegistry().register("", BooleanTextServer(make_store()))

    def test_unknown_backend_lists_the_registered_ones(self, registry):
        with pytest.raises(GatewayError, match="mercury"):
            registry.binding("nope")
        with pytest.raises(GatewayError):
            registry.client("nope")

    def test_container_protocol(self, registry):
        assert len(registry) == 2
        assert "mercury" in registry and "vsim" in registry
        assert "nope" not in registry
        assert registry.names() == ["mercury", "vsim"]
        assert [binding.name for binding in registry] == ["mercury", "vsim"]


class TestAttribution:
    def test_client_charges_only_its_own_ledger(self, registry):
        client = registry.client("vsim")
        client.search(VectorQuery("abstract", ("belief",), top_k=2))
        assert registry.ledger("vsim").total > 0.0
        assert registry.ledger("mercury").total == 0.0

    def test_total_is_the_sum_of_per_backend_totals(self, registry):
        registry.client("mercury").search("TI='belief'")
        registry.client("vsim").search(
            VectorQuery("abstract", ("query",), top_k=None)
        )
        per_backend = [binding.ledger.total for binding in registry]
        assert all(total > 0.0 for total in per_backend)
        assert registry.total() == pytest.approx(sum(per_backend))

    def test_report_carries_kind_and_accounting(self, registry):
        registry.client("vsim").search(
            VectorQuery("abstract", ("belief",), top_k=1)
        )
        report = registry.report()
        assert set(report) == {"mercury", "vsim"}
        assert report["vsim"]["source_kind"] == "vector"
        assert report["vsim"]["searches"] == 1
        assert report["mercury"]["searches"] == 0
        assert report["vsim"]["total"] == pytest.approx(
            registry.ledger("vsim").total
        )

    def test_reset_clears_every_ledger(self, registry):
        registry.client("mercury").search("TI='belief'")
        registry.client("vsim").search(
            VectorQuery("abstract", ("belief",), top_k=1)
        )
        assert registry.total() > 0.0
        registry.reset()
        assert registry.total() == 0.0
        assert registry.ledger("mercury").report()["searches"] == 0

    @settings(max_examples=25, deadline=None)
    @given(
        operations=st.lists(
            st.tuples(
                st.sampled_from(["mercury", "vsim"]),
                st.sampled_from(["belief", "query", "text", "plans"]),
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_interleaving_never_bleeds_across_ledgers(self, operations):
        """Invariant 15, hypothesis-tested: an interleaved stream of
        searches across two backends charges each ledger exactly what a
        per-backend serial replay would."""

        def run(assignments):
            store = make_store()
            registry = BackendRegistry()
            registry.register("mercury", BooleanTextServer(store))
            registry.register("vsim", VectorTextServer(store, "abstract"))
            clients = {name: registry.client(name) for name in registry.names()}
            for name, term in assignments:
                if name == "mercury":
                    clients[name].search(f"AB='{term}'")
                else:
                    clients[name].search(
                        VectorQuery("abstract", (term,), top_k=2)
                    )
            return registry

        interleaved = run(operations)
        replayed = run(
            [op for op in operations if op[0] == "mercury"]
            + [op for op in operations if op[0] == "vsim"]
        )
        for name in ("mercury", "vsim"):
            assert (
                interleaved.ledger(name).report()
                == replayed.ledger(name).report()
            )
        assert interleaved.total() == pytest.approx(replayed.total())
