"""Unit + property tests for cost constants and the metered ledger
(DESIGN.md invariant 5: ledger totals are exact)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import GatewayError
from repro.gateway.costs import PAPER_CONSTANTS, CostConstants, CostLedger


class TestCostConstants:
    def test_paper_defaults(self):
        assert PAPER_CONSTANTS.invocation == 3.0
        assert PAPER_CONSTANTS.per_posting == pytest.approx(1e-5)
        assert PAPER_CONSTANTS.short_form == pytest.approx(0.015)
        assert PAPER_CONSTANTS.long_form == 4.0

    def test_long_form_orders_of_magnitude_above_short(self):
        """Section 4.1: 'the long-form transmission cost is orders of
        magnitude more expensive than the short-form cost'."""
        assert PAPER_CONSTANTS.long_form / PAPER_CONSTANTS.short_form > 100

    def test_search_cost_formula(self):
        constants = CostConstants()
        assert constants.search_cost(1000, 10) == pytest.approx(
            3.0 + 1e-5 * 1000 + 0.015 * 10
        )

    def test_negative_rejected(self):
        with pytest.raises(GatewayError):
            CostConstants(invocation=-1)


class TestLedger:
    def test_charges_accumulate(self):
        ledger = CostLedger()
        ledger.charge_search(100, 5)
        ledger.charge_search(50, 0)
        ledger.charge_retrieve()
        ledger.charge_rtp(20)
        assert ledger.searches == 2
        assert ledger.postings_processed == 150
        assert ledger.short_documents == 5
        assert ledger.long_documents == 1
        assert ledger.rtp_documents == 20

    def test_charge_returns_marginal_cost(self):
        ledger = CostLedger()
        cost = ledger.charge_search(100, 5)
        assert cost == pytest.approx(ledger.constants.search_cost(100, 5))
        assert ledger.charge_retrieve() == ledger.constants.long_form

    def test_negative_rtp_rejected(self):
        with pytest.raises(GatewayError):
            CostLedger().charge_rtp(-1)

    def test_reset(self):
        ledger = CostLedger()
        ledger.charge_search(1, 1)
        ledger.reset()
        assert ledger.total == 0

    def test_snapshot_is_independent(self):
        ledger = CostLedger()
        ledger.charge_search(1, 1)
        snap = ledger.snapshot()
        ledger.charge_search(1, 1)
        assert snap.searches == 1
        assert ledger.searches == 2

    def test_diff(self):
        ledger = CostLedger()
        ledger.charge_search(10, 2)
        before = ledger.snapshot()
        ledger.charge_search(5, 1)
        ledger.charge_retrieve()
        delta = ledger.diff(before)
        assert delta.searches == 1
        assert delta.postings_processed == 5
        assert delta.long_documents == 1


@given(
    searches=st.lists(
        st.tuples(st.integers(0, 10_000), st.integers(0, 200)), max_size=20
    ),
    retrieves=st.integers(0, 50),
    rtp=st.integers(0, 10_000),
)
def test_ledger_total_is_exact_linear_form(searches, retrieves, rtp):
    """total == c_i*searches + c_p*postings + c_s*short + c_l*long + c_a*rtp."""
    ledger = CostLedger()
    for postings, results in searches:
        ledger.charge_search(postings, results)
    for _ in range(retrieves):
        ledger.charge_retrieve()
    ledger.charge_rtp(rtp)
    constants = ledger.constants
    expected = (
        constants.invocation * len(searches)
        + constants.per_posting * sum(p for p, _ in searches)
        + constants.short_form * sum(r for _, r in searches)
        + constants.long_form * retrieves
        + constants.rtp_per_document * rtp
    )
    assert ledger.total == pytest.approx(expected)
