"""Unit + property tests for the g-correlated joint statistics model
(DESIGN.md invariant 6)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import StatisticsError
from repro.gateway.statistics import (
    CorrelationModel,
    PredicateStatistics,
    TextStatisticsRegistry,
    joint_fanout,
    joint_selectivity,
)

sel_lists = st.lists(st.floats(0.001, 1.0), min_size=1, max_size=6)
fan_lists = st.lists(st.floats(0.01, 100.0), min_size=1, max_size=6)


class TestPredicateStatistics:
    def test_valid_construction(self):
        stats = PredicateStatistics("c", "f", selectivity=0.2, fanout=1.0)
        assert stats.conditional_fanout == pytest.approx(5.0)

    def test_zero_selectivity_conditional(self):
        stats = PredicateStatistics("c", "f", selectivity=0.0, fanout=0.0)
        assert stats.conditional_fanout == 0.0

    def test_selectivity_range_checked(self):
        with pytest.raises(StatisticsError):
            PredicateStatistics("c", "f", selectivity=1.5, fanout=1.0)

    def test_negative_fanout_rejected(self):
        with pytest.raises(StatisticsError):
            PredicateStatistics("c", "f", selectivity=0.5, fanout=-1.0)


class TestJointSelectivity:
    def test_one_correlated_is_min(self):
        assert joint_selectivity([0.5, 0.1, 0.9], 1) == pytest.approx(0.1)

    def test_k_correlated_is_product(self):
        assert joint_selectivity([0.5, 0.1, 0.9], 3) == pytest.approx(0.045)

    def test_g_between(self):
        assert joint_selectivity([0.5, 0.1, 0.9], 2) == pytest.approx(0.05)

    def test_g_larger_than_k_clamps(self):
        assert joint_selectivity([0.5], 4) == pytest.approx(0.5)

    def test_empty_is_one(self):
        assert joint_selectivity([], 1) == 1.0

    def test_invalid_g(self):
        with pytest.raises(StatisticsError):
            joint_selectivity([0.5], 0)


class TestJointFanout:
    def test_one_correlated_is_min(self):
        assert joint_fanout([5.0, 2.0, 9.0], 1, 100) == pytest.approx(2.0)

    def test_two_correlated_divides_by_d(self):
        assert joint_fanout([5.0, 2.0], 2, 100) == pytest.approx(10.0 / 100)

    def test_empty_is_d(self):
        assert joint_fanout([], 1, 100) == 100.0

    def test_invalid_document_count(self):
        with pytest.raises(StatisticsError):
            joint_fanout([1.0], 1, 0)


class TestCorrelationModel:
    def test_factories(self):
        assert CorrelationModel.fully_correlated(10).g == 1
        assert CorrelationModel.independent(10, 3).g == 3

    def test_model_application(self):
        model = CorrelationModel(g=1, document_count=100)
        stats = [
            PredicateStatistics("a", "f", 0.5, 5.0),
            PredicateStatistics("b", "f", 0.1, 2.0),
        ]
        assert model.selectivity(stats) == pytest.approx(0.1)
        assert model.fanout(stats) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(StatisticsError):
            CorrelationModel(g=0, document_count=10)
        with pytest.raises(StatisticsError):
            CorrelationModel(g=1, document_count=0)


class TestRegistry:
    def test_put_get(self):
        registry = TextStatisticsRegistry()
        stats = PredicateStatistics("c", "f", 0.5, 1.0)
        registry.put(stats)
        assert registry.get("c", "f") is stats
        assert registry.has("c", "f")
        assert len(registry) == 1

    def test_missing_raises(self):
        with pytest.raises(StatisticsError):
            TextStatisticsRegistry().get("c", "f")

    def test_overwrite(self):
        registry = TextStatisticsRegistry()
        registry.put(PredicateStatistics("c", "f", 0.5, 1.0))
        registry.put(PredicateStatistics("c", "f", 0.6, 2.0))
        assert registry.get("c", "f").selectivity == 0.6
        assert len(registry) == 1


@given(values=sel_lists)
def test_selectivity_monotone_in_g(values):
    """More independence (larger g) can only shrink joint selectivity."""
    previous = None
    for g in range(1, len(values) + 1):
        current = joint_selectivity(values, g)
        if previous is not None:
            assert current <= previous + 1e-12
        previous = current


@given(values=sel_lists)
def test_selectivity_extremes(values):
    assert joint_selectivity(values, 1) == pytest.approx(min(values))
    product = 1.0
    for value in values:
        product *= value
    assert joint_selectivity(values, len(values)) == pytest.approx(product)


@given(values=fan_lists, d=st.integers(1, 10_000))
def test_fanout_extremes(values, d):
    assert joint_fanout(values, 1, d) == pytest.approx(min(values))
    product = 1.0
    for value in values:
        product *= value
    expected = product / (d ** (len(values) - 1))
    assert joint_fanout(values, len(values), d) == pytest.approx(expected)
