"""Regression tests for ``TextClient.reset_accounting``.

A reset used to be all-or-nothing; cache hit/miss statistics describe
the cache rather than the client's accounting period, so by default
they must survive a reset (harnesses read them across resets), with an
opt-in flag to zero them too.
"""

from repro.gateway.cache import GatewayCache
from repro.gateway.client import TextClient
from repro.gateway.tracing import CallTracer


def warmed_client(server):
    client = TextClient(server, cache=GatewayCache(), tracer=CallTracer(enabled=True))
    client.search("TI='belief'")  # miss
    client.search("TI='belief'")  # hit
    client.retrieve("d1")  # miss
    client.retrieve("d1")  # hit
    return client


class TestResetAccounting:
    def test_default_reset_keeps_cache_stats(self, tiny_server):
        client = warmed_client(tiny_server)
        client.reset_accounting()
        assert client.ledger.total == 0.0
        assert client.ledger.seconds_saved == 0.0
        assert client.tracer.spans == []
        # The cache's own history survives...
        assert client.cache.search.stats.hits == 1
        assert client.cache.retrieve.stats.hits == 1
        # ...and so do the cached entries.
        assert client.cache.search.stats.lookups == 2

    def test_opt_in_reset_zeroes_cache_stats_but_keeps_entries(self, tiny_server):
        client = warmed_client(tiny_server)
        client.reset_accounting(include_cache_stats=True)
        assert client.cache.search.stats.lookups == 0
        assert client.cache.retrieve.stats.lookups == 0
        # Entries stayed warm: the next lookup is a hit, charged nothing.
        client.search("TI='belief'")
        assert client.cache.search.stats.hits == 1
        assert client.ledger.searches == 0
        assert client.ledger.seconds_saved > 0.0

    def test_flag_is_harmless_without_a_cache(self, tiny_server):
        client = TextClient(tiny_server)
        client.search("TI='belief'")
        client.reset_accounting(include_cache_stats=True)
        assert client.ledger.total == 0.0
