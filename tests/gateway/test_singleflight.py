"""Cross-ticket single-flight on the shared gateway cache.

The bug this guards against: two tenants submit byte-identical queries
with a shared :class:`GatewayCache`, both miss (the entry is not filled
yet), and both dispatch the search to the text server — the cache
deduplicates *storage* but not *in-flight work*.  The fix is an
in-flight fill map (:meth:`GatewayCache.claim_search_fill` /
:meth:`publish_search_fill`): the first misser becomes the fill leader,
later missers wait on its :class:`PendingFill` and are accounted as
cache hits.

The stress tests run with ``sys.setswitchinterval(1e-6)`` and a slow
server so that, without the in-flight map, every thread reliably
misses before the first fill lands — they fail on the pre-fix client.
"""

import sys
import threading
import time

import pytest

from repro.errors import GatewayError
from repro.gateway.cache import GatewayCache, PendingFill
from repro.gateway.client import TextClient
from repro.textsys.batching import BatchingTextServer


class SlowCountingServer:
    """Delegating server wrapper: counts searches, sleeps before each.

    The sleep widens the miss window: with N threads released by a
    barrier, all N observe an empty cache before any fill completes, so
    without single-flight the server sees N searches.
    """

    def __init__(self, inner, delay=0.02, fail_first=0):
        self._inner = inner
        self._delay = delay
        self._lock = threading.Lock()
        self.searches = 0
        self.batch_queries = 0
        self._failures_left = fail_first

    def _enter(self, queries=1):
        with self._lock:
            self.searches += 1
            self.batch_queries += queries
            fail = self._failures_left > 0
            if fail:
                self._failures_left -= 1
        time.sleep(self._delay)
        if fail:
            raise GatewayError("injected transient search failure")

    def search(self, query):
        self._enter()
        return self._inner.search(query)

    def search_batch(self, queries):
        self._enter(len(queries))
        return [self._inner.search(query) for query in queries]

    def __getattr__(self, name):
        return getattr(self._inner, name)


@pytest.fixture
def switch_fast():
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-6)
    yield
    sys.setswitchinterval(previous)


def _run_threads(count, target):
    barrier = threading.Barrier(count)
    errors = []
    results = []

    def runner():
        barrier.wait()
        try:
            results.append(target())
        except Exception as error:  # noqa: BLE001 - collected for asserts
            errors.append(error)

    threads = [threading.Thread(target=runner) for _ in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return results, errors


class TestSingleFlightSearch:
    THREADS = 8

    def test_identical_concurrent_searches_dispatch_once(
        self, tiny_server, switch_fast
    ):
        server = SlowCountingServer(tiny_server)
        cache = GatewayCache()
        clients = [
            TextClient(server, cache=cache) for _ in range(self.THREADS)
        ]
        iterator = iter(clients)

        def submit():
            client = next(iterator)
            return client.search("TI='belief'")

        results, errors = _run_threads(self.THREADS, submit)
        assert not errors
        assert server.searches == 1  # pre-fix: == THREADS
        docids = {tuple(result.docids) for result in results}
        assert len(docids) == 1

        # Exactly one ledger paid; every waiter was credited the full
        # avoided search cost, same as a cache hit.
        paid = [c for c in clients if c.ledger.total > 0]
        waited = [c for c in clients if c.ledger.total == 0]
        assert len(paid) == 1
        assert len(waited) == self.THREADS - 1
        for client in waited:
            assert client.ledger.seconds_saved == pytest.approx(
                paid[0].ledger.total
            )
        # Late arrivals may find the filled LRU entry instead of the
        # pending fill, so coalesced can undershoot THREADS - 1; the
        # barrier plus the slow server make at least one certain.
        assert cache.stats()["coalesced"] >= 1

    def test_waiters_fall_back_when_leader_fails(
        self, tiny_server, switch_fast
    ):
        server = SlowCountingServer(tiny_server, fail_first=1)
        cache = GatewayCache()
        clients = [
            TextClient(server, cache=cache) for _ in range(self.THREADS)
        ]
        iterator = iter(clients)

        def submit():
            client = next(iterator)
            return client.search("TI='belief'")

        results, errors = _run_threads(self.THREADS, submit)
        # The leader's dispatch failed; it published None and every
        # waiter fell back to its own dispatch rather than stalling.
        assert len(errors) == 1
        assert len(results) == self.THREADS - 1
        assert server.searches >= 2
        docids = {tuple(result.docids) for result in results}
        assert len(docids) == 1

    def test_batch_misses_coalesce_across_tickets(
        self, tiny_server, switch_fast
    ):
        server = SlowCountingServer(BatchingTextServer(tiny_server))
        cache = GatewayCache()
        clients = [
            TextClient(server, cache=cache) for _ in range(self.THREADS)
        ]
        iterator = iter(clients)
        queries = ["TI='belief'", "AB='retrieval'"]

        def submit():
            client = next(iterator)
            return client.search_batch(list(queries))

        results, errors = _run_threads(self.THREADS, submit)
        assert not errors
        # Each distinct expression travelled once, in one invocation.
        assert server.searches == 1
        assert server.batch_queries == len(queries)
        for batch in results:
            assert len(batch) == len(queries)
        # Everyone agrees on the answers.
        first = results[0]
        for batch in results[1:]:
            for mine, theirs in zip(batch, first):
                assert tuple(mine.docids) == tuple(theirs.docids)
        # Coalesced tickets were credited like hits (no charge, full
        # batch cost saved including the invocation they skipped).
        paid = [c for c in clients if c.ledger.total > 0]
        waited = [c for c in clients if c.ledger.total == 0]
        assert len(paid) == 1
        for client in waited:
            assert client.ledger.seconds_saved == pytest.approx(
                paid[0].ledger.total
            )


class TestPendingFill:
    def test_pre_resolved_fill_returns_immediately(self, tiny_server):
        client = TextClient(tiny_server, cache=GatewayCache())
        result = client.search("TI='belief'")
        fill = PendingFill(result)
        assert fill.wait(0.0) is result

    def test_claim_after_fill_sees_the_cached_entry(self, tiny_server):
        cache = GatewayCache()
        client = TextClient(tiny_server, cache=cache)
        result = client.search("TI='belief'")
        expression = "title='belief'"
        fill = cache.claim_search_fill(expression)
        assert fill is not None  # resolved, not a leadership claim
        assert fill.wait(0.0).docids == result.docids

    def test_publish_on_moved_version_resolves_none(self, tiny_server):
        cache = GatewayCache()
        client = TextClient(tiny_server, cache=cache)
        expression = "title='belief'"
        assert cache.claim_search_fill(expression) is None  # leader
        result = client.search("AB='retrieval'")  # any real ResultSet
        cache.publish_search_fill(expression, result, object())
        # Stale fills resolve None: waiters re-dispatch, never consume
        # results from a different data version.
        pending = cache.claim_search_fill(expression)
        assert pending is None or pending.wait(0.0) is None

    def test_wait_times_out_to_none(self):
        assert PendingFill().wait(0.0) is None
