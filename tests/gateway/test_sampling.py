"""Unit tests for sampling-based predicate statistics (Section 4.2)."""

import random

import pytest

from repro.errors import StatisticsError
from repro.gateway.client import TextClient
from repro.gateway.sampling import (
    exact_predicate_statistics,
    sample_predicate_statistics,
)


NAMES = ["radhika", "gravano", "smith", "nobody-here", "also-missing"]


class TestExactStatistics:
    def test_exact_values(self, tiny_server):
        stats = exact_predicate_statistics(
            tiny_server, "student.name", "author", NAMES
        )
        # radhika, gravano, smith match (3 of 5); each in exactly 1 doc.
        assert stats.selectivity == pytest.approx(3 / 5)
        assert stats.fanout == pytest.approx(3 / 5)
        assert stats.sample_size == 5

    def test_duplicates_and_nulls_ignored(self, tiny_server):
        values = ["radhika", "radhika", None, "gravano"]
        stats = exact_predicate_statistics(
            tiny_server, "student.name", "author", values
        )
        assert stats.sample_size == 2
        assert stats.selectivity == 1.0

    def test_no_values_raises(self, tiny_server):
        with pytest.raises(StatisticsError):
            exact_predicate_statistics(tiny_server, "c", "author", [None])


class TestSampledStatistics:
    def test_full_sample_equals_exact(self, tiny_server):
        client = TextClient(tiny_server)
        sampled = sample_predicate_statistics(
            client, "student.name", "author", NAMES, sample_size=100
        )
        exact = exact_predicate_statistics(
            tiny_server, "student.name", "author", NAMES
        )
        assert sampled.selectivity == pytest.approx(exact.selectivity)
        assert sampled.fanout == pytest.approx(exact.fanout)

    def test_sampling_cost_is_metered(self, tiny_server):
        """Section 4.2: sampling accesses the text system — a real cost."""
        client = TextClient(tiny_server)
        sample_predicate_statistics(
            client, "student.name", "author", NAMES, sample_size=3
        )
        assert client.ledger.searches == 3

    def test_deterministic_with_seeded_rng(self, tiny_server):
        results = []
        for _ in range(2):
            client = TextClient(tiny_server)
            stats = sample_predicate_statistics(
                client,
                "student.name",
                "author",
                NAMES,
                sample_size=3,
                rng=random.Random(5),
            )
            results.append((stats.selectivity, stats.fanout))
        assert results[0] == results[1]

    def test_invalid_sample_size(self, tiny_server):
        client = TextClient(tiny_server)
        with pytest.raises(StatisticsError):
            sample_predicate_statistics(
                client, "c", "author", NAMES, sample_size=0
            )

    def test_selectivity_in_unit_interval(self, tiny_server):
        client = TextClient(tiny_server)
        stats = sample_predicate_statistics(
            client, "student.name", "author", NAMES, sample_size=2,
            rng=random.Random(1),
        )
        assert 0.0 <= stats.selectivity <= 1.0
        assert stats.fanout >= 0.0
