"""Unit tests for the gateway call cache (LRU, accounting, invalidation)."""

import pytest

from repro.errors import GatewayError
from repro.gateway.cache import GatewayCache, LruCache
from repro.gateway.client import TextClient
from repro.textsys.batching import BatchingTextServer
from repro.textsys.query import TermQuery


class TestLruCache:
    def test_capacity_must_be_positive(self):
        with pytest.raises(GatewayError):
            LruCache(0)

    def test_evicts_least_recently_used(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes "a"
        cache.put("c", 3)  # evicts "b", the stalest
        assert "b" not in cache
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_peek_does_not_touch_recency_or_stats(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.peek("a") == 1
        assert cache.peek("zzz") is None
        assert cache.stats.lookups == 0
        cache.put("c", 3)  # "a" is still the oldest: peeking did not refresh
        assert "a" not in cache

    def test_put_overwrites_in_place(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("a", 2)
        assert len(cache) == 1
        assert cache.get("a") == 2


class TestSearchCaching:
    def test_hit_charges_nothing_and_credits_savings(self, tiny_server):
        client = TextClient(tiny_server, cache=GatewayCache())
        first = client.search("TI='belief'")
        paid = client.ledger.total
        assert paid > 0
        second = client.search("TI='belief'")
        assert client.ledger.total == paid  # the hit charged nothing
        assert client.ledger.searches == 1
        assert client.ledger.seconds_saved == pytest.approx(paid)
        assert [d.docid for d in second] == [d.docid for d in first]

    def test_equivalent_string_and_node_share_one_entry(self, tiny_server):
        client = TextClient(tiny_server, cache=GatewayCache())
        client.search("TI='belief'")
        client.search(TermQuery("title", "belief"))
        assert client.ledger.searches == 1
        assert client.cache.hits == 1

    def test_probe_shares_the_search_cache(self, tiny_server):
        client = TextClient(tiny_server, cache=GatewayCache())
        client.search("TI='belief'")
        assert client.probe("TI='belief'") is True
        assert client.ledger.searches == 1

    def test_savings_are_not_part_of_the_total(self, tiny_server):
        client = TextClient(tiny_server, cache=GatewayCache())
        client.search("TI='belief'")
        total_after_miss = client.ledger.total
        client.search("TI='belief'")
        client.search("TI='belief'")
        assert client.ledger.total == total_after_miss
        assert client.ledger.seconds_saved > 0

    def test_no_cache_accounting_is_unchanged(self, tiny_server):
        cached = TextClient(tiny_server, cache=GatewayCache())
        plain = TextClient(tiny_server)
        for client in (cached, plain):
            client.search("TI='belief'")
            client.search("TI='systems'")
        assert plain.ledger.total == pytest.approx(cached.ledger.total)
        assert plain.ledger.seconds_saved == 0.0


class TestRetrieveCaching:
    def test_second_retrieve_is_free(self, tiny_server):
        client = TextClient(tiny_server, cache=GatewayCache())
        first = client.retrieve("d1")
        second = client.retrieve("d1")
        assert second.fields == first.fields
        assert client.ledger.long_documents == 1
        assert client.ledger.seconds_saved == pytest.approx(
            client.ledger.constants.long_form
        )

    def test_retrieve_many_fills_and_uses_the_cache(self, tiny_server):
        client = TextClient(tiny_server, cache=GatewayCache())
        client.retrieve_many(["d1", "d2"])
        client.retrieve_many(["d2", "d1", "d3"])
        assert client.ledger.long_documents == 3  # d1, d2, d3 each once


class TestInvalidation:
    def test_store_mutation_drops_the_cache(self, tiny_store):
        from repro.textsys.server import BooleanTextServer

        server = BooleanTextServer(tiny_store)
        client = TextClient(server, cache=GatewayCache())
        client.search("TI='belief'")
        client.search("TI='belief'")
        assert client.cache.hits == 1

        tiny_store.add_record(
            "d9",
            title="Belief propagation",
            author="pearl",
            abstract="belief networks",
            year="1988",
        )
        server.index.rebuild()
        result = client.search("TI='belief'")
        assert client.ledger.searches == 2  # re-fetched, not served stale
        assert "d9" in {document.docid for document in result}
        assert client.cache.search.stats.invalidations == 1

    def test_swapping_servers_a_b_a_never_serves_stale(self, tiny_store):
        """Regression: two stores can sit at the same *numeric* version,
        so a client retargeted A -> B -> A must invalidate on every swap
        (the fingerprint is ``(store uid, version)``, not the bare
        version counter)."""
        from repro.textsys.documents import DocumentStore
        from repro.textsys.server import BooleanTextServer

        other = DocumentStore(
            ["title", "author", "abstract", "year"],
            short_fields=["title", "author", "year"],
        )
        for number in range(1, 5):  # same mutation count as tiny_store
            other.add_record(
                f"x{number}",
                title=f"Belief paper {number}",
                author="someone",
                abstract="belief elsewhere",
                year="2000",
            )
        server_a = BooleanTextServer(tiny_store)
        server_b = BooleanTextServer(other)
        assert tiny_store.version == other.version  # the collision

        client = TextClient(server_a, cache=GatewayCache())
        from_a = client.search("TI='belief'")
        client.server = server_b
        from_b = client.search("TI='belief'")
        assert set(from_b.docids) == {"x1", "x2", "x3", "x4"}
        client.server = server_a
        again = client.search("TI='belief'")
        assert again.docids == from_a.docids
        assert client.cache.hits == 0  # every answer was re-fetched
        assert client.cache.search.stats.invalidations == 2

    def test_validate_compares_versions_for_inequality(self):
        cache = GatewayCache()
        assert cache.validate(5) is True  # first observation
        cache.search.put("x", object())
        assert cache.validate(5) is True
        assert "x" in cache.search
        assert cache.validate(3) is False  # ANY change invalidates
        assert "x" not in cache.search

    def test_clear_forgets_the_version(self):
        cache = GatewayCache()
        cache.validate(1)
        cache.search.put("x", object())
        cache.clear()
        assert len(cache.search) == 0
        assert cache.validate(2) is True  # no invalidation recorded
        assert cache.search.stats.invalidations == 0


class TestBatchCaching:
    def _client(self, tiny_server, **kwargs):
        return TextClient(BatchingTextServer(tiny_server, batch_limit=10), **kwargs)

    def test_partial_hits_only_pay_for_misses(self, tiny_server):
        client = self._client(tiny_server, cache=GatewayCache())
        client.search("TI='belief'")
        paid_before = client.ledger.total
        results = client.search_batch(["TI='belief'", "TI='systems'"])
        assert len(results) == 2
        miss = client.server.search("TI='systems'")
        constants = client.ledger.constants
        assert client.ledger.total - paid_before == pytest.approx(
            constants.search_cost(miss.postings_processed, len(miss))
        )

    def test_all_hits_save_the_invocation_too(self, tiny_server):
        client = self._client(tiny_server, cache=GatewayCache())
        client.search_batch(["TI='belief'", "TI='systems'"])
        paid = client.ledger.total
        saved_before = client.ledger.seconds_saved
        client.search_batch(["TI='belief'", "TI='systems'"])
        assert client.ledger.total == paid
        saved = client.ledger.seconds_saved - saved_before
        assert saved > client.ledger.constants.invocation

    def test_duplicate_misses_in_one_batch_dispatch_once(self, tiny_server):
        """Regression: identical queries missing together in one batch
        must be deduped before dispatch — one server search, one charge —
        with the shared answer fanned back out to every position."""
        client = self._client(tiny_server, cache=GatewayCache())
        before = tiny_server.counters.snapshot()
        results = client.search_batch(
            ["TI='belief'", "TI='belief'", "TI='systems'", "TI='belief'"]
        )
        assert (tiny_server.counters - before).searches == 2  # belief, systems
        assert results[0].docids == results[1].docids == results[3].docids
        reference = self._client(tiny_server, cache=GatewayCache())
        reference.search_batch(["TI='belief'", "TI='systems'"])
        assert client.ledger.total == pytest.approx(reference.ledger.total)

    def test_duplicate_hits_still_count_as_hits(self, tiny_server):
        client = self._client(tiny_server, cache=GatewayCache())
        client.search("TI='belief'")
        results = client.search_batch(["TI='belief'", "TI='belief'"])
        assert results[0].docids == results[1].docids
        assert client.cache.hits == 2
        assert client.ledger.searches == 1  # no invocation went out

    def test_uncached_batch_accounting_is_unchanged(self, tiny_server):
        cached = self._client(tiny_server, cache=GatewayCache())
        plain = self._client(tiny_server)
        for client in (cached, plain):
            client.search_batch(["TI='belief'", "TI='systems'"])
        assert plain.ledger.total == pytest.approx(cached.ledger.total)


class TestAcceptance:
    def test_warm_cache_halves_a_repeated_ts_join(self, scenario):
        """A TS join re-executed against a warm cache costs >50% less."""
        from repro.core.joinmethods import TupleSubstitution

        cache = GatewayCache()
        context = scenario.context(cache=cache)
        query = scenario.query("q1")
        method = TupleSubstitution()
        first = method.execute(query, context)
        second = method.execute(query, context)
        assert second.result_keys() == first.result_keys()
        assert first.cost.total > 0
        assert second.cost.total < 0.5 * first.cost.total
        assert cache.hits > 0
        assert second.cost.seconds_saved > 0
