"""Unit tests for published text-system statistics (Section 8)."""

import pytest

from repro.errors import StatisticsError
from repro.gateway.published import (
    field_statistics,
    published_predicate_statistics,
)
from repro.gateway.sampling import exact_predicate_statistics


class TestFieldStatistics:
    def test_summary_values(self, tiny_server):
        stats = field_statistics(tiny_server, "title")
        assert stats.field == "title"
        assert stats.vocabulary_size == tiny_server.index.vocabulary_size("title")
        assert stats.max_document_frequency == 3  # 'systems'
        assert stats.total_postings == sum(
            tiny_server.document_frequency("title", term)
            for term in tiny_server.index.vocabulary("title")
        )

    def test_histogram_covers_vocabulary(self, tiny_server):
        stats = field_statistics(tiny_server, "title")
        assert sum(count for _, count in stats.frequency_histogram) == (
            stats.vocabulary_size
        )

    def test_costs_no_searches(self, tiny_server):
        before = tiny_server.counters.searches
        field_statistics(tiny_server, "author")
        assert tiny_server.counters.searches == before


class TestPublishedPredicateStatistics:
    def test_single_word_values_exact(self, tiny_server):
        values = ["radhika", "gravano", "nobody-known"]
        published = published_predicate_statistics(
            tiny_server, "c", "author", values
        )
        exact = exact_predicate_statistics(tiny_server, "c", "author", values)
        assert published.selectivity == pytest.approx(exact.selectivity)
        assert published.fanout == pytest.approx(exact.fanout)

    def test_no_searches_sent(self, tiny_server):
        before = tiny_server.counters.searches
        published_predicate_statistics(
            tiny_server, "c", "author", ["radhika", "gravano"]
        )
        assert tiny_server.counters.searches == before

    def test_phrase_values_upper_bound(self, tiny_server):
        """Phrases use the rarest word's frequency — an overestimate."""
        values = ["belief revisited"]  # words co-occur only in d3's title
        published = published_predicate_statistics(
            tiny_server, "c", "title", values
        )
        exact = exact_predicate_statistics(tiny_server, "c", "title", values)
        assert published.fanout >= exact.fanout
        assert published.selectivity >= exact.selectivity

    def test_unindexable_values_count_as_misses(self, tiny_server):
        published = published_predicate_statistics(
            tiny_server, "c", "author", ["radhika", "???"]
        )
        assert published.selectivity == pytest.approx(0.5)

    def test_empty_values_rejected(self, tiny_server):
        with pytest.raises(StatisticsError):
            published_predicate_statistics(tiny_server, "c", "author", [None])
