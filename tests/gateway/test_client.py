"""Unit tests for the metered text client."""

import pytest

from repro.gateway.client import TextClient
from repro.textsys.query import TermQuery


class TestSearchAccounting:
    def test_search_charges_ledger(self, tiny_server):
        client = TextClient(tiny_server)
        result = client.search("TI='belief'")
        assert client.ledger.searches == 1
        assert client.ledger.postings_processed == result.postings_processed
        assert client.ledger.short_documents == len(result)

    def test_probe_is_a_charged_search(self, tiny_server):
        client = TextClient(tiny_server)
        assert client.probe("TI='belief'") is True
        assert client.probe("TI='zzz'") is False
        assert client.ledger.searches == 2

    def test_retrieve_charges_long_form(self, tiny_server):
        client = TextClient(tiny_server)
        client.retrieve("d1")
        assert client.ledger.long_documents == 1
        assert client.ledger.total == pytest.approx(client.ledger.constants.long_form)

    def test_retrieve_many(self, tiny_server):
        client = TextClient(tiny_server)
        documents = client.retrieve_many(["d1", "d3"])
        assert len(documents) == 2
        assert client.ledger.long_documents == 2

    def test_retrieve_many_charges_duplicates_once(self, tiny_server):
        """Regression: duplicated docids used to pay ``c_l`` per element.

        ``["d1", "d1", "d2"]`` names two distinct documents, so the
        ledger must charge exactly two long-form retrievals.
        """
        client = TextClient(tiny_server)
        documents = client.retrieve_many(["d1", "d1", "d2"])
        assert [document.docid for document in documents] == ["d1", "d2"]
        assert client.ledger.long_documents == 2
        assert client.ledger.total == pytest.approx(
            2 * client.ledger.constants.long_form
        )

    def test_retrieve_many_preserves_first_occurrence_order(self, tiny_server):
        client = TextClient(tiny_server)
        documents = client.retrieve_many(["d3", "d1", "d3", "d2", "d1"])
        assert [document.docid for document in documents] == ["d3", "d1", "d2"]
        assert client.ledger.long_documents == 3

    def test_charge_rtp(self, tiny_server):
        client = TextClient(tiny_server)
        cost = client.charge_rtp(10)
        assert cost == pytest.approx(10 * client.ledger.constants.rtp_per_document)


class TestCallLog:
    def test_log_disabled_by_default(self, tiny_server):
        client = TextClient(tiny_server)
        client.search("TI='belief'")
        assert client.call_log == []

    def test_log_records_expressions(self, tiny_server):
        client = TextClient(tiny_server, log_calls=True)
        client.search(TermQuery("title", "belief"))
        client.search("TI='zzz'")
        assert len(client.call_log) == 2
        assert client.call_log[0].expression == "title='belief'"
        assert client.call_log[0].result_size == 2
        assert client.call_log[1].result_size == 0

    def test_reset_accounting(self, tiny_server):
        client = TextClient(tiny_server, log_calls=True)
        client.search("TI='belief'")
        client.reset_accounting()
        assert client.ledger.total == 0
        assert client.call_log == []


def test_meta_properties(tiny_server):
    client = TextClient(tiny_server)
    assert client.document_count == 4
    assert client.term_limit == 70
