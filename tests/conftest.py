"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.joinmethods.base import JoinContext
from repro.gateway.client import TextClient
from repro.relational.catalog import Catalog
from repro.relational.schema import Schema
from repro.relational.types import DataType
from repro.textsys.documents import DocumentStore
from repro.textsys.server import BooleanTextServer
from repro.workload import build_default_scenario


@pytest.fixture(scope="session")
def scenario():
    """The canonical (seeded) Table-2 scenario, shared across tests."""
    return build_default_scenario(seed=7)


@pytest.fixture
def tiny_store() -> DocumentStore:
    """Four bibliographic documents with known term placement."""
    store = DocumentStore(
        ["title", "author", "abstract", "year"],
        short_fields=["title", "author", "year"],
    )
    store.add_record(
        "d1",
        title="Belief update in AI systems",
        author="radhika garcia",
        abstract="We discuss belief revision and update operators",
        year="may 1993",
    )
    store.add_record(
        "d2",
        title="Text retrieval systems",
        author="gravano",
        abstract="Inverted index construction for information filtering",
        year="june 1994",
    )
    store.add_record(
        "d3",
        title="Belief update revisited",
        author="smith jones",
        abstract="More on belief update",
        year="may 1993",
    )
    store.add_record(
        "d4",
        title="Unrelated systems work",
        author="nobody",
        abstract="information retrieval filtering pipelines",
        year="april 1990",
    )
    return store


@pytest.fixture
def tiny_server(tiny_store) -> BooleanTextServer:
    return BooleanTextServer(tiny_store)


@pytest.fixture
def tiny_catalog() -> Catalog:
    """A small student table joined against :func:`tiny_store`."""
    catalog = Catalog()
    student = catalog.create_table(
        "student",
        Schema.of(
            ("name", DataType.VARCHAR),
            ("area", DataType.VARCHAR),
            ("year", DataType.INTEGER),
            ("advisor", DataType.VARCHAR),
        ),
    )
    student.insert_many(
        [
            ["radhika", "AI", 4, "garcia"],
            ["gravano", "AI", 5, "garcia"],
            ["kao", "databases", 2, "garcia"],
            ["smith", "AI", 4, "ullman"],
            ["jones", "theory", 6, "ullman"],
        ]
    )
    return catalog


@pytest.fixture
def tiny_context(tiny_catalog, tiny_server) -> JoinContext:
    return JoinContext(tiny_catalog, TextClient(tiny_server))
