"""Evaluation tests, including the index-vs-brute-force equivalence
property (DESIGN.md invariant 4)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.textsys.documents import Document, DocumentStore
from repro.textsys.engine import evaluate, matches_document
from repro.textsys.inverted_index import InvertedIndex
from repro.textsys.query import (
    AndQuery,
    NotQuery,
    OrQuery,
    PhraseQuery,
    ProximityQuery,
    SearchNode,
    TermQuery,
    TruncatedQuery,
)


@pytest.fixture
def index(tiny_store):
    return InvertedIndex(tiny_store)


def docids(index, result):
    return [index.docid_of(p.doc) for p in result.postings]


class TestBasicEvaluation:
    def test_term(self, index):
        result = evaluate(index, TermQuery("title", "belief"))
        assert docids(index, result) == ["d1", "d3"]
        assert result.postings_processed == 2

    def test_phrase_requires_adjacency(self, index):
        result = evaluate(index, PhraseQuery("title", ("belief", "update")))
        assert docids(index, result) == ["d1", "d3"]
        # "update ... belief" in reverse does not match
        reverse = evaluate(index, PhraseQuery("title", ("update", "belief")))
        assert docids(index, reverse) == []

    def test_three_word_phrase(self, index):
        result = evaluate(index, PhraseQuery("title", ("belief", "update", "revisited")))
        assert docids(index, result) == ["d3"]

    def test_truncation(self, index):
        result = evaluate(index, TruncatedQuery("title", "sys"))
        assert docids(index, result) == ["d1", "d2", "d4"]

    def test_proximity(self, index):
        near = evaluate(index, ProximityQuery("abstract", "information", "filtering", 1))
        assert docids(index, near) == ["d2"]
        wide = evaluate(index, ProximityQuery("abstract", "information", "filtering", 2))
        assert docids(index, wide) == ["d2", "d4"]

    def test_and(self, index):
        node = AndQuery((TermQuery("title", "belief"), TermQuery("author", "smith")))
        assert docids(index, evaluate(index, node)) == ["d3"]

    def test_or(self, index):
        node = OrQuery((TermQuery("author", "gravano"), TermQuery("author", "nobody")))
        assert docids(index, evaluate(index, node)) == ["d2", "d4"]

    def test_not_complements_collection(self, index):
        node = NotQuery(TermQuery("title", "belief"))
        assert docids(index, evaluate(index, node)) == ["d2", "d4"]

    def test_postings_processed_accumulates(self, index):
        # 'belief' appears in 2 titles, 'systems' in 3 (d1, d2, d4).
        node = AndQuery((TermQuery("title", "belief"), TermQuery("title", "systems")))
        result = evaluate(index, node)
        assert result.postings_processed == 2 + 3


# ----------------------------------------------------------------------
# property: inverted-index evaluation == brute-force evaluation
# ----------------------------------------------------------------------
WORDS = ["alpha", "beta", "gamma", "delta", "epsilon"]


def random_store(rng: random.Random, doc_count: int) -> DocumentStore:
    store = DocumentStore(["title", "body"])
    for i in range(doc_count):
        title = " ".join(rng.choices(WORDS, k=rng.randint(0, 6)))
        body = " ".join(rng.choices(WORDS, k=rng.randint(0, 10)))
        store.add(Document(f"d{i}", {"title": title, "body": body}))
    return store


def random_query(rng: random.Random, depth: int = 3) -> SearchNode:
    if depth == 0 or rng.random() < 0.4:
        kind = rng.randrange(4)
        field = rng.choice(["title", "body"])
        if kind == 0:
            return TermQuery(field, rng.choice(WORDS))
        if kind == 1:
            return PhraseQuery(
                field, (rng.choice(WORDS), rng.choice(WORDS))
            )
        if kind == 2:
            return TruncatedQuery(field, rng.choice(WORDS)[: rng.randint(1, 3)])
        return ProximityQuery(
            field, rng.choice(WORDS), rng.choice(WORDS), rng.randint(1, 4)
        )
    connective = rng.randrange(3)
    if connective == 0:
        return AndQuery((random_query(rng, depth - 1), random_query(rng, depth - 1)))
    if connective == 1:
        return OrQuery((random_query(rng, depth - 1), random_query(rng, depth - 1)))
    return NotQuery(random_query(rng, depth - 1))


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_index_evaluation_matches_brute_force(seed):
    """For random corpora and random Boolean queries, evaluating through
    inverted lists returns exactly the documents the reference per-document
    matcher accepts."""
    rng = random.Random(seed)
    store = random_store(rng, rng.randint(1, 15))
    index = InvertedIndex(store)
    for _ in range(5):
        query = random_query(rng)
        via_index = set(docids(index, evaluate(index, query)))
        via_scan = {
            document.docid
            for document in store
            if matches_document(document, query)
        }
        assert via_index == via_scan, query.to_expression()
