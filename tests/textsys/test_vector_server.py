"""The served vector backend: API surface, counters, sharding identity."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SearchLimitExceeded, TextSystemError
from repro.textsys.documents import DocumentStore
from repro.textsys.server import BooleanTextServer
from repro.textsys.sharding import merge_scored_results, partition_store
from repro.textsys.vector import VectorQuery, VectorSpaceEngine, VectorStatistics
from repro.textsys.vectorserver import VectorTextServer, build_vector_shard_servers


@pytest.fixture
def store() -> DocumentStore:
    store = DocumentStore(
        ["title", "abstract"], short_fields=["title", "abstract"]
    )
    store.add_record("d1", title="belief update", abstract="belief revision systems")
    store.add_record("d2", title="query optimization", abstract="join query plans")
    store.add_record("d3", title="text retrieval", abstract="ranked text search")
    store.add_record("d4", title="belief networks", abstract="probabilistic belief")
    store.add_record("d5", title="empty abstract", abstract="")
    return store


@pytest.fixture
def server(store) -> VectorTextServer:
    return VectorTextServer(store, "abstract")


class TestSurface:
    def test_source_kind_is_vector(self, server):
        assert server.source_kind == "vector"
        assert BooleanTextServer(server.store).source_kind == "boolean"

    def test_search_returns_scored_short_forms(self, server):
        result = server.search(VectorQuery("abstract", ("belief",), top_k=3))
        # d4's two-token abstract has the smaller norm, so it ranks first.
        assert result.docids == ("d4", "d1")
        assert len(result.scores) == 2
        assert result.scores[0] >= result.scores[1] > 0.0
        assert all(
            set(document.fields) <= {"title", "abstract"}
            for document in result.documents
        )

    def test_search_matches_engine_exactly(self, server):
        query = VectorQuery("abstract", ("belief", "query"), top_k=None)
        result = server.search(query)
        scored = server.engine.search(query.terms, top_k=None)
        assert result.docids == tuple(entry.docid for entry in scored)
        assert result.scores == tuple(entry.score for entry in scored)

    def test_rejects_non_vector_queries(self, server):
        with pytest.raises(TextSystemError, match="VectorQuery"):
            server.search("AB='belief'")

    def test_rejects_wrong_field(self, server):
        with pytest.raises(TextSystemError, match="ranks field"):
            server.search(VectorQuery("title", ("belief",)))
        with pytest.raises(TextSystemError, match="ranks field"):
            server.document_frequency("title", "belief")

    def test_term_limit_enforced(self, store):
        server = VectorTextServer(store, "abstract", term_limit=2)
        server.search(VectorQuery("abstract", ("belief", "query")))
        with pytest.raises(SearchLimitExceeded):
            server.search(VectorQuery("abstract", ("a", "b", "c")))

    def test_validation(self, store):
        with pytest.raises(TextSystemError):
            VectorTextServer(store, "abstract", term_limit=0)
        with pytest.raises(TextSystemError):
            VectorTextServer(store, "nope")

    def test_retrieve_returns_long_form(self, server):
        document = server.retrieve("d1")
        assert document.field("abstract") == "belief revision systems"
        assert [d.docid for d in server.retrieve_many(["d2", "d1"])] == [
            "d2", "d1"
        ]


class TestCounters:
    def test_search_counts_postings_and_results(self, server):
        before = server.counters.snapshot()
        result = server.search(VectorQuery("abstract", ("belief",), top_k=None))
        delta = server.counters.snapshot() - before
        assert delta.searches == 1
        assert delta.postings_processed == result.postings_processed == 2
        assert delta.short_documents == len(result.docids)

    def test_retrieve_counts(self, server):
        before = server.counters.snapshot()
        server.retrieve_many(["d1", "d2", "d3"])
        delta = server.counters.snapshot() - before
        assert delta.long_documents == 3

    def test_corpus_dump_counts_zero_postings(self, server):
        before = server.counters.snapshot()
        result = server.search(
            VectorQuery("abstract", (), top_k=None, threshold=-1.0)
        )
        delta = server.counters.snapshot() - before
        assert delta.postings_processed == 0
        assert delta.short_documents == len(result.docids) == 5


class TestEngineFreshness:
    def test_engine_rebuilds_after_store_mutation(self, server):
        assert server.search(
            VectorQuery("abstract", ("zeppelin",), top_k=None)
        ).docids == ()
        server.store.add_record(
            "d6", title="new", abstract="zeppelin flight"
        )
        result = server.search(
            VectorQuery("abstract", ("zeppelin",), top_k=None)
        )
        assert result.docids == ("d6",)

    def test_data_version_tracks_store(self, server):
        version = server.data_version
        server.store.add_record("d7", title="x", abstract="y")
        assert server.data_version == version + 1
        assert server.data_fingerprint == (server.store.uid, server.data_version)


class TestShardingIdentity:
    def test_shard_servers_score_with_global_statistics(self, store):
        reference = VectorTextServer(store, "abstract")
        corpus = partition_store(store, 2)
        shards = build_vector_shard_servers(corpus, "abstract")
        query = VectorQuery("abstract", ("belief", "text"), top_k=None)
        expected = {
            docid: score
            for docid, score in zip(
                reference.search(query).docids,
                reference.search(query).scores,
            )
        }
        for shard in shards:
            result = shard.search(query)
            for docid, score in zip(result.docids, result.scores):
                assert score == expected[docid]  # bit-identical, not approx

    def test_merged_shards_reproduce_the_single_server(self, store):
        reference = VectorTextServer(store, "abstract")
        corpus = partition_store(store, 3)
        shards = build_vector_shard_servers(corpus, "abstract")
        for top_k in (1, 2, None):
            query = VectorQuery("abstract", ("belief",), top_k=top_k)
            merged = merge_scored_results(
                [shard.search(query) for shard in shards], top_k
            )
            single = reference.search(query)
            assert merged.docids == single.docids
            assert merged.scores == single.scores
            assert merged.postings_processed == single.postings_processed

    def test_local_document_frequencies_sum_across_shards(self, store):
        reference = VectorTextServer(store, "abstract")
        corpus = partition_store(store, 2)
        shards = build_vector_shard_servers(corpus, "abstract")
        for term in ("belief", "query", "text", "zzz"):
            assert reference.document_frequency("abstract", term) == sum(
                shard.document_frequency("abstract", term) for shard in shards
            )

    @settings(max_examples=30, deadline=None)
    @given(
        terms=st.lists(
            st.sampled_from(["belief", "query", "text", "systems", "zzz"]),
            min_size=1,
            max_size=3,
        ),
        top_k=st.sampled_from([1, 2, 5, None]),
        shard_count=st.integers(min_value=1, max_value=4),
    )
    def test_scored_merge_identity_property(self, terms, top_k, shard_count):
        store = DocumentStore(["abstract"], short_fields=["abstract"])
        store.add_record("d1", abstract="belief revision systems")
        store.add_record("d2", abstract="join query plans")
        store.add_record("d3", abstract="ranked text search systems")
        store.add_record("d4", abstract="probabilistic belief")
        store.add_record("d5", abstract="")
        reference = VectorTextServer(store, "abstract")
        shards = build_vector_shard_servers(
            partition_store(store, shard_count), "abstract"
        )
        query = VectorQuery("abstract", tuple(terms), top_k=top_k)
        merged = merge_scored_results(
            [shard.search(query) for shard in shards], top_k
        )
        single = reference.search(query)
        assert merged.docids == single.docids
        assert merged.scores == single.scores

    def test_injected_statistics_override_local_idf(self, store):
        """A one-document shard still scores with the global N and df."""
        shard_store = DocumentStore(["abstract"], short_fields=["abstract"])
        shard_store.add_record("d1", abstract="belief revision systems")
        statistics = VectorStatistics.for_store(store, "abstract")
        shard_engine = VectorSpaceEngine(
            shard_store, "abstract", statistics=statistics
        )
        global_engine = VectorSpaceEngine(store, "abstract")
        assert shard_engine.score("d1", ["belief"]) == global_engine.score(
            "d1", ["belief"]
        )
        local_only = VectorSpaceEngine(shard_store, "abstract")
        assert shard_engine.score("d1", ["belief"]) != local_only.score(
            "d1", ["belief"]
        )
