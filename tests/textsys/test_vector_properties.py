"""Property tests: the vector engine against a brute-force oracle.

The oracle reimplements TF–IDF / cosine ranking from the definitions —
full vocabulary vectors, naive loops — with none of the engine's
posting-list shortcuts.  Hypothesis then drives random corpora and
queries through both and demands identical answers, plus pins for the
edge cases the property sweep first surfaced (duplicate query terms,
empty queries, zero-idf terms, zero-norm documents, and the
negative-threshold corpus dump).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Sequence, Tuple

import pytest
from hypothesis import given, settings, strategies as st

from repro.textsys.analysis import tokenize
from repro.textsys.documents import DocumentStore
from repro.textsys.vector import VectorSpaceEngine

WORDS = ["alpha", "bravo", "carol", "delta", "echo", "fox"]

documents_strategy = st.lists(
    st.lists(st.sampled_from(WORDS), min_size=0, max_size=6),
    min_size=1,
    max_size=8,
)
query_strategy = st.lists(
    st.sampled_from(WORDS + ["zzz"]), min_size=0, max_size=5
)


def build_engine(documents: List[List[str]]) -> VectorSpaceEngine:
    store = DocumentStore(["body"])
    for index, words in enumerate(documents):
        store.add_record(f"d{index:03d}", body=" ".join(words))
    return VectorSpaceEngine(store, "body")


def oracle_scores(
    documents: List[List[str]], terms: Sequence[str]
) -> Dict[str, float]:
    """Cosine similarity per document, straight from the definitions."""
    tokenized = {
        f"d{index:03d}": [
            token for word in words for token in tokenize(word)
        ]
        for index, words in enumerate(documents)
    }
    collection_size = len(documents)
    frequency: Dict[str, int] = {}
    for tokens in tokenized.values():
        for term in set(tokens):
            frequency[term] = frequency.get(term, 0) + 1

    def idf(term: str) -> float:
        observed = frequency.get(term, 0)
        if observed == 0:
            return 0.0
        return math.log((1 + collection_size) / (1 + observed)) + 1.0

    def weight(count: int, term: str) -> float:
        if count <= 0:
            return 0.0
        return (1.0 + math.log(count)) * idf(term)

    query_counts = Counter(
        token for term in terms for token in tokenize(term)
    )
    query_vector = {
        term: weight(count, term) for term, count in query_counts.items()
    }
    query_norm = math.sqrt(sum(v * v for v in query_vector.values()))

    scores: Dict[str, float] = {}
    for docid, tokens in tokenized.items():
        counts = Counter(tokens)
        document_vector = {
            term: weight(count, term) for term, count in counts.items()
        }
        norm = math.sqrt(sum(v * v for v in document_vector.values()))
        dot = sum(
            query_vector[term] * document_vector.get(term, 0.0)
            for term in query_vector
        )
        if query_norm == 0.0 or norm == 0.0 or dot == 0.0:
            scores[docid] = 0.0
        else:
            scores[docid] = dot / (norm * query_norm)
    return scores


def oracle_ranking(
    documents: List[List[str]],
    terms: Sequence[str],
    threshold: float = 0.0,
) -> List[Tuple[str, float]]:
    scores = oracle_scores(documents, terms)
    kept = [(d, s) for d, s in scores.items() if s > threshold]
    kept.sort(key=lambda entry: (-entry[1], entry[0]))
    return kept


class TestOracleEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(documents=documents_strategy, terms=query_strategy)
    def test_full_search_matches_oracle(self, documents, terms):
        """Untruncated search returns exactly the oracle's ranking."""
        engine = build_engine(documents)
        expected = oracle_ranking(documents, terms)
        actual = engine.search(terms, top_k=None, threshold=0.0)
        assert [entry.docid for entry in actual] == [d for d, _ in expected]
        for entry, (_, score) in zip(actual, expected):
            assert entry.score == pytest.approx(score, abs=1e-12)

    @settings(max_examples=60, deadline=None)
    @given(
        documents=documents_strategy,
        terms=query_strategy,
        top_k=st.integers(min_value=1, max_value=10),
    )
    def test_top_k_is_a_prefix_of_the_full_ranking(
        self, documents, terms, top_k
    ):
        engine = build_engine(documents)
        full = engine.search(terms, top_k=None, threshold=0.0)
        truncated = engine.search(terms, top_k=top_k, threshold=0.0)
        assert truncated == full[:top_k]

    @settings(max_examples=60, deadline=None)
    @given(
        documents=documents_strategy,
        terms=query_strategy,
        threshold=st.sampled_from([0.0, 0.1, 0.25, 0.5, 0.9]),
    )
    def test_threshold_matches_oracle(self, documents, terms, threshold):
        engine = build_engine(documents)
        expected = {d for d, _ in oracle_ranking(documents, terms, threshold)}
        actual = engine.result_docids(terms, top_k=None, threshold=threshold)
        assert set(actual) == expected
        assert all(
            entry.score > threshold
            for entry in engine.search(terms, top_k=None, threshold=threshold)
        )

    @settings(max_examples=60, deadline=None)
    @given(documents=documents_strategy, terms=query_strategy)
    def test_corpus_dump_matches_oracle_everywhere(self, documents, terms):
        """threshold < 0: every document comes back with its exact score."""
        engine = build_engine(documents)
        dump = engine.search(terms, top_k=None, threshold=-1.0)
        assert len(dump) == len(documents)
        scores = oracle_scores(documents, terms)
        for entry in dump:
            assert entry.score == pytest.approx(scores[entry.docid], abs=1e-12)

    @settings(max_examples=40, deadline=None)
    @given(documents=documents_strategy, terms=query_strategy)
    def test_postings_count_matches_distinct_token_lists(
        self, documents, terms
    ):
        engine = build_engine(documents)
        outcome = engine.counted_search(terms, top_k=None)
        distinct = {token for term in terms for token in tokenize(term)}
        expected = sum(engine.document_frequency(token) for token in distinct)
        assert outcome.postings_processed == expected


class TestEdgeCasePins:
    """The specific behaviors the property sweep is guarding."""

    def test_duplicate_single_term_scores_identically(self):
        """One distinct token: cosine normalization cancels the tf boost."""
        engine = build_engine([["alpha", "bravo"], ["alpha"], ["bravo"]])
        once = engine.search(["alpha"], top_k=None)
        twice = engine.search(["alpha", "alpha"], top_k=None)
        assert [e.docid for e in once] == [e.docid for e in twice]
        for a, b in zip(once, twice):
            assert a.score == pytest.approx(b.score, abs=1e-12)

    def test_duplicate_terms_boost_relative_weight(self):
        """With two distinct tokens, repetition shifts rank toward the
        repeated one — duplicates accumulate tf, they are not dropped."""
        documents = [["alpha"], ["bravo"], ["carol"]]
        engine = build_engine(documents)
        balanced = engine.search(["alpha", "bravo"], top_k=None)
        boosted = engine.search(["alpha", "alpha", "alpha", "bravo"], top_k=None)
        scores_balanced = {e.docid: e.score for e in balanced}
        scores_boosted = {e.docid: e.score for e in boosted}
        assert scores_balanced["d000"] == pytest.approx(
            scores_balanced["d001"], abs=1e-12
        )
        assert scores_boosted["d000"] > scores_boosted["d001"]

    def test_empty_query_matches_nothing(self):
        engine = build_engine([["alpha"], ["bravo"]])
        assert engine.search([], top_k=None) == []
        assert engine.counted_search([], top_k=None).postings_processed == 0

    def test_empty_query_dump_still_returns_everything(self):
        """The V-SCAN primitive: no terms, negative threshold, all docs."""
        engine = build_engine([["alpha"], ["bravo"], []])
        dump = engine.search([], top_k=None, threshold=-1.0)
        assert [e.docid for e in dump] == ["d000", "d001", "d002"]
        assert all(e.score == 0.0 for e in dump)

    def test_zero_idf_terms_contribute_nothing(self):
        """A term in no document has idf 0 and changes no score."""
        documents = [["alpha", "bravo"], ["alpha"]]
        engine = build_engine(documents)
        without = engine.search(["alpha"], top_k=None)
        with_unknown = engine.search(["alpha", "zzz"], top_k=None)
        assert [e.docid for e in without] == [e.docid for e in with_unknown]
        for a, b in zip(without, with_unknown):
            assert a.score == pytest.approx(b.score, abs=1e-12)

    def test_zero_norm_documents_never_rank_above_threshold(self):
        """An empty document can never score, even for an empty-ish query."""
        engine = build_engine([["alpha"], []])
        assert engine.result_docids(["alpha"], top_k=None) == ["d000"]
        assert engine.score("d001", ["alpha"]) == 0.0

    def test_negative_threshold_regression_includes_zero_score_documents(self):
        """Regression for the corpus-dump bug: candidates were drawn from
        the query tokens' posting lists only, so documents with no query
        term (score 0 — still `> -1.0`) were silently dropped."""
        documents = [["alpha"], ["bravo"], []]
        engine = build_engine(documents)
        dump = engine.search(["alpha"], top_k=None, threshold=-1.0)
        docids = [entry.docid for entry in dump]
        # All three documents — including 'bravo'-only and the empty one.
        assert set(docids) == {"d000", "d001", "d002"}
        # The posting-list shortcut would have returned just this one:
        assert engine.result_docids(["alpha"], top_k=None) == ["d000"]

    def test_ties_break_by_docid(self):
        documents = [["alpha"], ["alpha"], ["alpha"]]
        engine = build_engine(documents)
        results = engine.search(["alpha"], top_k=None)
        assert [e.docid for e in results] == ["d000", "d001", "d002"]
        assert len({e.score for e in results}) == 1
