"""Unit tests for documents and the document store."""

import pytest

from repro.errors import SchemaError, UnknownDocumentError, UnknownFieldError
from repro.textsys.documents import Document, DocumentStore


class TestDocument:
    def test_field_access(self):
        document = Document("d1", {"title": "hello"})
        assert document.field("title") == "hello"
        assert document.field("missing") == ""

    def test_empty_docid_rejected(self):
        with pytest.raises(SchemaError):
            Document("", {})

    def test_short_form(self):
        document = Document("d1", {"title": "t", "abstract": "a"})
        short = document.short_form(["title", "author"])
        assert short.docid == "d1"
        assert dict(short.fields) == {"title": "t"}


class TestDocumentStore:
    def test_add_and_get(self):
        store = DocumentStore(["title"])
        store.add_record("d1", title="x")
        assert store.get("d1").field("title") == "x"
        assert "d1" in store
        assert len(store) == 1

    def test_duplicate_docid_rejected(self):
        store = DocumentStore(["title"])
        store.add_record("d1", title="x")
        with pytest.raises(SchemaError):
            store.add_record("d1", title="y")

    def test_unknown_field_rejected(self):
        store = DocumentStore(["title"])
        with pytest.raises(UnknownFieldError):
            store.add_record("d1", body="x")

    def test_unknown_docid_raises(self):
        with pytest.raises(UnknownDocumentError):
            DocumentStore(["title"]).get("nope")

    def test_short_fields_validated(self):
        with pytest.raises(UnknownFieldError):
            DocumentStore(["title"], short_fields=["nope"])

    def test_needs_fields(self):
        with pytest.raises(SchemaError):
            DocumentStore([])

    def test_duplicate_fields_rejected(self):
        with pytest.raises(SchemaError):
            DocumentStore(["a", "a"])

    def test_iteration_order(self):
        store = DocumentStore(["title"])
        for i in range(3):
            store.add_record(f"d{i}", title=str(i))
        assert store.docids() == ["d0", "d1", "d2"]
        assert [d.docid for d in store] == ["d0", "d1", "d2"]
