"""Unit tests for the search-expression rewriter (optimized engine)."""

import pytest

from repro.errors import SearchSyntaxError
from repro.textsys.documents import Document, DocumentStore
from repro.textsys.inverted_index import InvertedIndex
from repro.textsys.query import (
    AndQuery,
    NotQuery,
    OrQuery,
    TermQuery,
    TruncatedQuery,
)
from repro.textsys.rewriter import estimated_result_size, rewrite


@pytest.fixture
def index():
    store = DocumentStore(["title"])
    # 'common' in 4 docs, 'mid' in 2, 'rare' in 1.
    store.add(Document("d0", {"title": "common mid rare"}))
    store.add(Document("d1", {"title": "common mid"}))
    store.add(Document("d2", {"title": "common"}))
    store.add(Document("d3", {"title": "common"}))
    return InvertedIndex(store)


def term(word):
    return TermQuery("title", word)


class TestFlattening:
    def test_nested_ors_flatten(self, index):
        nested = OrQuery(
            (OrQuery((term("common"), term("mid"))), term("rare"))
        )
        result = rewrite(index, nested)
        assert isinstance(result.node, OrQuery)
        assert len(result.node.operands) == 3
        assert result.duplicates == ()

    def test_nested_ands_flatten(self, index):
        nested = AndQuery(
            (AndQuery((term("common"), term("mid"))), term("rare"))
        )
        result = rewrite(index, nested)
        assert isinstance(result.node, AndQuery)
        assert len(result.node.operands) == 3

    def test_mixed_connectives_do_not_flatten(self, index):
        mixed = AndQuery((OrQuery((term("common"), term("mid"))), term("rare")))
        result = rewrite(index, mixed)
        assert isinstance(result.node, AndQuery)
        assert len(result.node.operands) == 2

    def test_single_operand_connective_collapses(self, index):
        result = rewrite(index, AndQuery((term("rare"),)))
        assert result.node == term("rare")


class TestDeduplication:
    def test_duplicate_terms_dropped_and_recorded(self, index):
        node = OrQuery((term("common"), term("common"), term("mid")))
        result = rewrite(index, node)
        assert len(result.node.operands) == 2
        assert result.duplicates == (term("common"),)

    def test_duplicates_across_nesting_levels(self, index):
        node = OrQuery((OrQuery((term("mid"), term("rare"))), term("mid")))
        result = rewrite(index, node)
        assert len(result.node.operands) == 2
        assert result.duplicates == (term("mid"),)

    def test_duplicate_subtrees_in_and(self, index):
        subtree = OrQuery((term("mid"), term("rare")))
        node = AndQuery((subtree, subtree))
        result = rewrite(index, node)
        assert result.node == subtree  # AND of one operand collapses
        assert result.duplicates == (subtree,)


class TestConjunctOrdering:
    def test_smallest_list_first(self, index):
        node = AndQuery((term("common"), term("rare"), term("mid")))
        result = rewrite(index, node)
        assert result.node.operands == (
            term("rare"),
            term("mid"),
            term("common"),
        )

    def test_not_operands_pushed_last(self, index):
        node = AndQuery((NotQuery(term("rare")), term("common")))
        result = rewrite(index, node)
        assert result.node.operands == (
            term("common"),
            NotQuery(term("rare")),
        )

    def test_ordering_recurses_into_or_members(self, index):
        node = OrQuery(
            (AndQuery((term("common"), term("rare"))), term("mid"))
        )
        result = rewrite(index, node)
        inner = result.node.operands[0]
        assert isinstance(inner, AndQuery)
        assert inner.operands == (term("rare"), term("common"))


class TestEstimates:
    def test_term_estimate_is_document_frequency(self, index):
        assert estimated_result_size(index, term("common")) == 4
        assert estimated_result_size(index, term("rare")) == 1
        assert estimated_result_size(index, term("zzz")) == 0

    def test_truncated_estimate_sums_expansions(self, index):
        # 'common' (4) + ... no other 'co' terms
        assert estimated_result_size(index, TruncatedQuery("title", "co")) == 4

    def test_and_or_not_estimates(self, index):
        conj = AndQuery((term("common"), term("rare")))
        disj = OrQuery((term("mid"), term("rare")))
        assert estimated_result_size(index, conj) == 1
        assert estimated_result_size(index, disj) == 3
        assert estimated_result_size(index, NotQuery(term("common"))) == 0

    def test_estimates_charge_nothing(self, index):
        pages_before = index.pages_read
        estimated_result_size(
            index, AndQuery((term("common"), TruncatedQuery("title", "m")))
        )
        assert index.pages_read == pages_before


class TestMalformedConnectives:
    def test_zero_operand_and_rejected(self, index):
        bad = AndQuery.__new__(AndQuery)
        object.__setattr__(bad, "operands", ())
        with pytest.raises(SearchSyntaxError):
            rewrite(index, bad)

    def test_zero_operand_or_rejected(self, index):
        bad = OrQuery.__new__(OrQuery)
        object.__setattr__(bad, "operands", ())
        with pytest.raises(SearchSyntaxError):
            rewrite(index, bad)
