"""Optimized-kernel equivalence properties (DESIGN.md "Engine kernels").

For random corpora and random Boolean query trees, the optimized engine
must be *observationally identical* to the reference engine — same
docids, same ``postings_processed``, same index page reads, same server
counters, same priced ledger totals — at any shard count.  Only wall
clock may differ.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SearchSyntaxError
from repro.gateway.client import TextClient
from repro.textsys.documents import Document, DocumentStore
from repro.textsys.engine import evaluate, matches_document, resolve_engine_mode
from repro.textsys.inverted_index import InvertedIndex
from repro.textsys.query import (
    AndQuery,
    NotQuery,
    OrQuery,
    PhraseQuery,
    ProximityQuery,
    SearchNode,
    TermQuery,
    TruncatedQuery,
)
from repro.textsys.server import BooleanTextServer
from repro.textsys.sharding import build_shard_servers, partition_store

WORDS = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"]


def random_store(rng: random.Random, doc_count: int) -> DocumentStore:
    store = DocumentStore(["title", "body"], short_fields=["title"])
    for i in range(doc_count):
        title = " ".join(rng.choices(WORDS, k=rng.randint(0, 6)))
        body = " ".join(rng.choices(WORDS, k=rng.randint(0, 10)))
        store.add(Document(f"d{i}", {"title": title, "body": body}))
    return store


def random_query(rng: random.Random, depth: int = 3) -> SearchNode:
    if depth == 0 or rng.random() < 0.35:
        kind = rng.randrange(4)
        field = rng.choice(["title", "body"])
        if kind == 0:
            return TermQuery(field, rng.choice(WORDS))
        if kind == 1:
            return PhraseQuery(field, (rng.choice(WORDS), rng.choice(WORDS)))
        if kind == 2:
            return TruncatedQuery(field, rng.choice(WORDS)[: rng.randint(1, 3)])
        return ProximityQuery(
            field, rng.choice(WORDS), rng.choice(WORDS), rng.randint(1, 4)
        )
    connective = rng.randrange(3)
    if connective == 2:
        return NotQuery(random_query(rng, depth - 1))
    # Wide fan-ins with deliberate duplicates: the shapes the rewriter's
    # flatten/dedupe and the evaluator's memoization must keep
    # charge-identical.
    operands = [random_query(rng, depth - 1) for _ in range(rng.randint(1, 4))]
    if len(operands) > 1 and rng.random() < 0.4:
        operands.append(rng.choice(operands))
    rng.shuffle(operands)
    node_type = AndQuery if connective == 0 else OrQuery
    return node_type(tuple(operands))


def run_mode(store: DocumentStore, query: SearchNode, mode: str):
    """Evaluate on a fresh index; returns (docids, processed, pages read)."""
    index = InvertedIndex(store)
    outcome = evaluate(index, query, mode=mode)
    docids = [index.docid_of(doc) for doc in outcome.postings.doc_array]
    return docids, outcome.postings_processed, index.pages_read


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_optimized_equals_reference_equals_brute_force(seed):
    """Docids, postings charges, and page reads agree across engines, and
    both engines agree with the per-document reference matcher."""
    rng = random.Random(seed)
    store = random_store(rng, rng.randint(1, 18))
    for _ in range(4):
        query = random_query(rng)
        ref_docids, ref_processed, ref_pages = run_mode(store, query, "reference")
        opt_docids, opt_processed, opt_pages = run_mode(store, query, "optimized")
        expression = query.to_expression()
        assert opt_docids == ref_docids, expression
        assert opt_processed == ref_processed, expression
        assert opt_pages == ref_pages, expression
        brute = [
            document.docid
            for document in store
            if matches_document(document, query)
        ]
        assert opt_docids == brute, expression


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_server_accounting_identical_across_modes_and_shards(seed):
    """Server counters, result sets, and priced ledger totals are
    bit-identical between engine modes and across shard counts."""
    rng = random.Random(seed)
    store = random_store(rng, rng.randint(2, 18))
    queries = [random_query(rng, depth=2) for _ in range(3)]

    observed = {}
    for mode in ("reference", "optimized"):
        server = BooleanTextServer(store, engine_mode=mode)
        client = TextClient(server)
        answers = [client.search(query) for query in queries]
        observed[mode] = (
            [result.docids for result in answers],
            server.counters.as_dict(),
            client.ledger.total,
        )
    assert observed["optimized"] == observed["reference"]

    expected_docids, expected_counters, _ = observed["optimized"]
    for shards in (2, 3):
        corpus = partition_store(store, shards)
        servers = build_shard_servers(corpus, engine_mode="optimized")
        merged_docids = []
        for query in queries:
            partials = [server.search(query) for server in servers]
            merged_docids.append(corpus.merge_results(partials).docids)
        assert merged_docids == expected_docids
        summed = {
            key: sum(server.counters.as_dict()[key] for server in servers)
            for key in expected_counters
        }
        # Postings and transmitted documents partition across shards; the
        # scatter itself multiplies only the per-shard invocation count.
        assert summed["postings_processed"] == expected_counters["postings_processed"]
        assert summed["short_documents"] == expected_counters["short_documents"]
        assert summed["long_documents"] == expected_counters["long_documents"]
        assert summed["searches"] == shards * expected_counters["searches"]


class TestZeroOperandConnectives:
    """Zero-operand AND/OR: typed error at construction, loud at runtime."""

    def test_construction_raises_typed_error(self):
        with pytest.raises(SearchSyntaxError):
            AndQuery(())
        with pytest.raises(SearchSyntaxError):
            OrQuery(())

    @pytest.mark.parametrize("node_type", [AndQuery, OrQuery])
    @pytest.mark.parametrize("mode", ["reference", "optimized"])
    def test_engine_rejects_smuggled_empty_connective(self, node_type, mode):
        # Bypass the dataclass constructor the way a __dict__-restoring
        # deserializer could; the engine must raise, never return the
        # old silent None/empty result.
        bad = node_type.__new__(node_type)
        object.__setattr__(bad, "operands", ())
        store = DocumentStore(["title"])
        store.add(Document("d0", {"title": "alpha"}))
        index = InvertedIndex(store)
        with pytest.raises(SearchSyntaxError):
            evaluate(index, bad, mode=mode)

    def test_matches_document_rejects_empty_connective(self):
        bad = AndQuery.__new__(AndQuery)
        object.__setattr__(bad, "operands", ())
        with pytest.raises(SearchSyntaxError):
            matches_document(Document("d0", {"title": "alpha"}), bad)


class TestEngineModeResolution:
    def test_explicit_mode_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_MODE", "reference")
        assert resolve_engine_mode("optimized") == "optimized"

    def test_env_sets_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_MODE", "reference")
        assert resolve_engine_mode(None) == "reference"
        monkeypatch.delenv("REPRO_ENGINE_MODE")
        assert resolve_engine_mode(None) == "optimized"

    def test_unknown_mode_rejected(self):
        from repro.errors import TextSystemError

        with pytest.raises(TextSystemError):
            resolve_engine_mode("turbo")
        with pytest.raises(TextSystemError):
            BooleanTextServer(DocumentStore(["title"]), engine_mode="turbo")
