"""DESIGN invariant 13: the disk-backed index is charge-identical.

Swapping :class:`InvertedIndex` for a :class:`DiskInvertedIndex` built
from the same store must change *nothing observable* in the cost model:
same docids, same ``postings_processed``, same charged ``pages_read``,
same server counters, same priced ledger totals — in both engine modes,
at any shard count, and regardless of block size, cache budget, or I/O
mode.  Only the physical I/O counters (``io_stats``) may differ, and
they are never a cost-model input.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.gateway.client import TextClient
from repro.textsys.diskindex import DiskInvertedIndex, build_disk_index
from repro.textsys.engine import evaluate
from repro.textsys.inverted_index import InvertedIndex
from repro.textsys.server import BooleanTextServer
from repro.textsys.sharding import build_shard_servers, partition_store

from tests.textsys.test_engine_equivalence import random_query, random_store


def run_engine(index, query, mode):
    """(docids, postings charged, pages charged) on a fresh index."""
    outcome = evaluate(index, query, mode=mode)
    docids = [index.docid_of(doc) for doc in outcome.postings.doc_array]
    return docids, outcome.postings_processed, index.pages_read


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_disk_engine_is_charge_identical(seed, tmp_path_factory):
    """Engine-level identity over random corpora, queries, and disk-index
    physical parameters (block size, spill threshold, cache, I/O mode)."""
    rng = random.Random(seed)
    store = random_store(rng, rng.randint(1, 18))
    path = tmp_path_factory.mktemp("inv13") / f"s{seed}.idx"
    build_disk_index(
        store,
        store.field_names,
        path,
        block_size=rng.choice([1, 2, 4, 128]),
        spill_postings=rng.choice([None, 5]),
    )
    for _ in range(3):
        query = random_query(rng)
        expression = query.to_expression()
        for mode in ("reference", "optimized"):
            expected = run_engine(InvertedIndex(store), query, mode)
            with DiskInvertedIndex(
                path,
                io_mode=rng.choice(["mmap", "read"]),
                cache_budget=rng.choice([0, None, 1 << 20]),
            ) as disk:
                actual = run_engine(disk, query, mode)
            assert actual == expected, (expression, mode)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_server_accounting_identical_memory_vs_disk(seed, tmp_path_factory):
    """Full-stack identity: a metered client sees the same result sets,
    server counters, and priced ledger totals whichever index backs the
    server — and a shard fleet served from per-shard index files keeps
    the shard-sum invariants of DESIGN inv. 10."""
    rng = random.Random(seed)
    store = random_store(rng, rng.randint(2, 16))
    queries = [random_query(rng, depth=2) for _ in range(3)]
    tmp = tmp_path_factory.mktemp("inv13srv")

    def observe(server):
        client = TextClient(server)
        answers = [client.search(query) for query in queries]
        return (
            [result.docids for result in answers],
            server.counters.as_dict(),
            client.ledger.total,
        )

    observed = None
    for mode in ("reference", "optimized"):
        memory = observe(BooleanTextServer(store, engine_mode=mode))
        index_path = build_disk_index(
            store, store.field_names, tmp / f"{mode}.idx"
        )
        with DiskInvertedIndex(index_path) as disk_index:
            disk = observe(
                BooleanTextServer(store, engine_mode=mode, index=disk_index)
            )
        assert disk == memory, mode
        observed = memory

    expected_docids, expected_counters, _ = observed
    for shards in (1, 2):

        def index_factory(shard_id, shard_store):
            path = build_disk_index(
                shard_store,
                shard_store.field_names,
                tmp / f"shard{shards}_{shard_id}.idx",
            )
            return DiskInvertedIndex(path)

        corpus = partition_store(store, shards)
        servers = build_shard_servers(corpus, index_factory=index_factory)
        merged_docids = []
        for query in queries:
            partials = [server.search(query) for server in servers]
            merged_docids.append(corpus.merge_results(partials).docids)
        assert merged_docids == expected_docids
        summed = {
            key: sum(server.counters.as_dict()[key] for server in servers)
            for key in expected_counters
        }
        assert summed["postings_processed"] == expected_counters[
            "postings_processed"
        ]
        assert summed["short_documents"] == expected_counters["short_documents"]
        assert summed["long_documents"] == expected_counters["long_documents"]
        assert summed["searches"] == shards * expected_counters["searches"]
