"""Unit tests for the batched-invocation interface (Section 8)."""

import pytest

from repro.errors import SearchLimitExceeded, TextSystemError
from repro.gateway.client import TextClient
from repro.textsys.batching import BatchingTextServer


@pytest.fixture
def batching(tiny_server):
    return BatchingTextServer(tiny_server, batch_limit=3)


class TestServer:
    def test_answers_in_correspondence(self, batching):
        results = batching.search_batch(["TI='belief'", "AU='gravano'"])
        assert results[0].docids == ("d1", "d3")
        assert results[1].docids == ("d2",)

    def test_batch_limit_enforced(self, batching):
        queries = ["TI='belief'"] * 4
        with pytest.raises(TextSystemError, match="batch"):
            batching.search_batch(queries)

    def test_empty_batch_rejected(self, batching):
        with pytest.raises(TextSystemError):
            batching.search_batch([])

    def test_per_search_term_limit_still_applies(self, tiny_store):
        from repro.textsys.server import BooleanTextServer

        server = BatchingTextServer(BooleanTextServer(tiny_store, term_limit=1))
        with pytest.raises(SearchLimitExceeded):
            server.search_batch(["TI='belief' and TI='update'"])

    def test_invalid_limit(self, tiny_server):
        with pytest.raises(TextSystemError):
            BatchingTextServer(tiny_server, batch_limit=0)

    def test_passthrough_operations(self, batching):
        assert batching.document_count == 4
        assert batching.term_limit == 70
        assert len(batching.search("TI='belief'")) == 2
        assert batching.retrieve("d1").docid == "d1"
        assert batching.document_frequency("title", "belief") == 2


class TestClientAccounting:
    def test_single_invocation_for_whole_batch(self, batching):
        client = TextClient(batching)
        results = client.search_batch(["TI='belief'", "AU='gravano'", "TI='zzz'"])
        assert len(results) == 3
        assert client.ledger.searches == 1  # one invocation!
        assert client.ledger.short_documents == 3
        assert client.ledger.postings_processed == sum(
            result.postings_processed for result in results
        )

    def test_batching_cheaper_than_individual(self, batching):
        batched = TextClient(batching)
        batched.search_batch(["TI='belief'", "AU='gravano'"])
        individual = TextClient(batching)
        individual.search("TI='belief'")
        individual.search("AU='gravano'")
        saved = individual.ledger.total - batched.ledger.total
        assert saved == pytest.approx(batched.ledger.constants.invocation)

    def test_plain_server_rejected(self, tiny_server):
        from repro.errors import GatewayError

        client = TextClient(tiny_server)
        with pytest.raises(GatewayError, match="batch"):
            client.search_batch(["TI='belief'"])

    def test_call_log_entry(self, batching):
        client = TextClient(batching, log_calls=True)
        client.search_batch(["TI='belief'"])
        assert client.call_log[0].expression == "<batch of 1>"
