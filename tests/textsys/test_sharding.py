"""Corpus partitioning and the shard-merge invariants.

Includes the shard-count invariance property: over 1/2/4 shards, a
metered client sees identical docids and *bit-identical* ledger totals,
because docids partition (ordering restored by global ordinal) and
postings partition (``postings_processed`` sums exactly).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TextSystemError, UnknownDocumentError
from repro.gateway.client import TextClient
from repro.remote.router import build_sharded_transport
from repro.textsys.documents import DocumentStore
from repro.textsys.server import BooleanTextServer
from repro.textsys.sharding import (
    PARTITION_SCHEMES,
    build_shard_servers,
    hash_shard_of,
    partition_store,
)


class TestPartitioning:
    def test_shards_are_disjoint_and_cover_the_corpus(self, tiny_store):
        corpus = partition_store(tiny_store, 3)
        shard_docids = [{d.docid for d in store} for store in corpus.stores]
        union = set().union(*shard_docids)
        assert union == {"d1", "d2", "d3", "d4"}
        assert sum(len(ids) for ids in shard_docids) == len(union)  # disjoint
        for docid in union:
            assert docid in {d.docid for d in corpus.stores[corpus.shard_of(docid)]}

    def test_hash_assignment_is_stable(self, tiny_store):
        first = partition_store(tiny_store, 4).assignments
        second = partition_store(tiny_store, 4).assignments
        assert first == second
        for docid, shard in first.items():
            assert shard == hash_shard_of(docid, 4)
        # Placement survives corpus growth: existing docids keep their
        # shard when the store is re-partitioned after additions.
        tiny_store.add_record(
            "d9", title="new", author="x", abstract="y", year="1999"
        )
        grown = partition_store(tiny_store, 4).assignments
        assert all(grown[docid] == shard for docid, shard in first.items())

    def test_round_robin_deals_in_insertion_order(self, tiny_store):
        corpus = partition_store(tiny_store, 3, scheme="round_robin")
        assert corpus.assignments == {"d1": 0, "d2": 1, "d3": 2, "d4": 0}

    def test_relative_order_preserved_within_shards(self, tiny_store):
        corpus = partition_store(tiny_store, 2)
        for store in corpus.stores:
            ordinals = [corpus.global_order[d.docid] for d in store]
            assert ordinals == sorted(ordinals)

    def test_shard_stores_do_not_alias_source_documents(self, tiny_store):
        corpus = partition_store(tiny_store, 2)
        source_doc = tiny_store.get("d1")
        source_doc.fields["title"] = "mutated"
        shard_doc = corpus.stores[corpus.shard_of("d1")].get("d1")
        assert shard_doc.fields["title"] != "mutated"

    def test_validation(self, tiny_store):
        with pytest.raises(TextSystemError):
            partition_store(tiny_store, 0)
        with pytest.raises(TextSystemError):
            partition_store(tiny_store, 2, scheme="range")
        assert set(PARTITION_SCHEMES) == {"hash", "round_robin"}

    def test_shard_of_unknown_docid_raises(self, tiny_store):
        corpus = partition_store(tiny_store, 2)
        with pytest.raises(UnknownDocumentError):
            corpus.shard_of("nope")


class TestMerge:
    def _merged_search(self, corpus, servers, expression):
        return corpus.merge_results(
            [server.search(expression) for server in servers]
        )

    @pytest.mark.parametrize("scheme", PARTITION_SCHEMES)
    @pytest.mark.parametrize("expression", ["TI='belief'", "TI='systems'"])
    def test_merge_restores_single_server_answer(
        self, tiny_store, tiny_server, scheme, expression
    ):
        corpus = partition_store(tiny_store, 3, scheme=scheme)
        servers = build_shard_servers(corpus)
        merged = self._merged_search(corpus, servers, expression)
        local = tiny_server.search(expression)
        assert merged.docids == local.docids
        assert merged.postings_processed == local.postings_processed

    def test_documents_added_after_the_snapshot_sort_behind(self, tiny_store):
        corpus = partition_store(tiny_store, 2)
        servers = build_shard_servers(corpus)
        corpus.stores[0].add_record(
            "d9",
            title="belief afterthought",
            author="late",
            abstract="late",
            year="1999",
        )
        servers[0].index.rebuild()
        merged = self._merged_search(corpus, servers, "TI='belief'")
        assert merged.docids[-1] == "d9"
        assert merged.docids[:-1] == ("d1", "d3")


WORDS = ["alpha", "beta", "gamma", "delta", "epsilon"]

documents = st.lists(
    st.tuples(
        st.lists(st.sampled_from(WORDS), min_size=1, max_size=4),
        st.lists(st.sampled_from(WORDS), min_size=1, max_size=6),
    ),
    min_size=1,
    max_size=12,
)

expressions = st.one_of(
    st.sampled_from([f"TI='{word}'" for word in WORDS]),
    st.sampled_from([f"AB='{word}'" for word in WORDS]),
    st.tuples(st.sampled_from(WORDS), st.sampled_from(WORDS)).map(
        lambda pair: f"TI='{pair[0]}' or AB='{pair[1]}'"
    ),
    st.tuples(st.sampled_from(WORDS), st.sampled_from(WORDS)).map(
        lambda pair: f"AB='{pair[0]}' and not TI='{pair[1]}'"
    ),
)


class TestShardCountInvariance:
    """Satellite 5: docids and metered costs are shard-count invariant."""

    @settings(max_examples=25, deadline=None)
    @given(docs=documents, expression=expressions)
    def test_identical_docids_and_ledger_totals_over_1_2_4_shards(
        self, docs, expression
    ):
        store = DocumentStore(["title", "abstract"], short_fields=["title"])
        for number, (title, abstract) in enumerate(docs):
            store.add_record(
                f"doc{number}", title=" ".join(title), abstract=" ".join(abstract)
            )

        baseline = TextClient(BooleanTextServer(store))
        expected = baseline.search(expression)
        baseline.retrieve_many(expected.docids)

        for shards in (1, 2, 4):
            transport = build_sharded_transport(
                store, shards, profile="lan", time_scale=0.0, pool_size=1
            )
            client = TextClient(transport)
            result = client.search(expression)
            assert result.docids == expected.docids
            assert result.postings_processed == expected.postings_processed
            client.retrieve_many(result.docids)
            assert client.ledger.total == baseline.ledger.total
            transport.close()
