"""Unit tests for tokenization and term normalization."""

from hypothesis import given, strategies as st

from repro.textsys.analysis import (
    is_phrase,
    normalize_term,
    tokenize,
    tokenize_with_positions,
)


class TestTokenize:
    def test_lowercases(self):
        assert tokenize("Belief UPDATE") == ["belief", "update"]

    def test_splits_on_punctuation(self):
        assert tokenize("smith, jones; and-co") == ["smith", "jones", "and", "co"]

    def test_internal_apostrophe_kept(self):
        assert tokenize("O'Brien's work") == ["o'brien's", "work"]

    def test_numbers_are_tokens(self):
        assert tokenize("may 1993") == ["may", "1993"]

    def test_alphanumeric_runs(self):
        assert tokenize("garcia042x7") == ["garcia042x7"]

    def test_empty_and_symbol_only(self):
        assert tokenize("") == []
        assert tokenize("!!! --- ???") == []


class TestPositions:
    def test_word_offsets(self):
        assert tokenize_with_positions("a b a") == [("a", 0), ("b", 1), ("a", 2)]

    def test_positions_skip_punctuation(self):
        assert tokenize_with_positions("a, b") == [("a", 0), ("b", 1)]


class TestNormalizeTerm:
    def test_first_token(self):
        assert normalize_term("Belief") == "belief"

    def test_empty(self):
        assert normalize_term("???") == ""


def test_is_phrase():
    assert is_phrase("belief update")
    assert not is_phrase("belief")
    assert not is_phrase("")


@given(st.text(max_size=80))
def test_tokenize_idempotent_on_join(text):
    """Re-tokenizing the joined token stream is a fixpoint."""
    tokens = tokenize(text)
    assert tokenize(" ".join(tokens)) == tokens


@given(st.text(max_size=80))
def test_tokens_are_normalized(text):
    for token in tokenize(text):
        assert token == token.lower()
        assert token  # non-empty
