"""Unit tests for the positional inverted index."""

import pytest

from repro.errors import UnknownFieldError
from repro.textsys.documents import DocumentStore
from repro.textsys.inverted_index import InvertedIndex


@pytest.fixture
def index(tiny_store):
    return InvertedIndex(tiny_store)


class TestLookup:
    def test_document_count(self, index):
        assert index.document_count == 4

    def test_term_postings(self, index):
        postings = index.lookup("title", "belief")
        assert [index.docid_of(p.doc) for p in postings] == ["d1", "d3"]

    def test_positions_recorded(self, index):
        postings = index.lookup("title", "update")
        # d1: "Belief update in AI systems" -> 'update' at offset 1
        assert postings[0].positions == (1,)

    def test_field_scoping(self, index):
        assert len(index.lookup("author", "belief")) == 0
        assert len(index.lookup("abstract", "belief")) == 2

    def test_missing_term_empty(self, index):
        assert len(index.lookup("title", "zzz")) == 0

    def test_unknown_field_raises(self, index):
        with pytest.raises(UnknownFieldError):
            index.lookup("nope", "belief")

    def test_document_frequency(self, index):
        assert index.document_frequency("title", "belief") == 2
        assert index.document_frequency("title", "zzz") == 0


class TestPrefix:
    def test_prefix_expansion(self, index):
        terms = [term for term, _ in index.lookup_prefix("title", "sys")]
        assert terms == ["systems"]

    def test_prefix_multiple(self, index):
        terms = [term for term, _ in index.lookup_prefix("abstract", "re")]
        assert terms == ["retrieval", "revision"]

    def test_prefix_no_match(self, index):
        assert index.lookup_prefix("title", "zzz") == []


class TestOrdinals:
    def test_round_trip(self, index):
        for docid in ("d1", "d2", "d3", "d4"):
            assert index.docid_of(index.ordinal_of(docid)) == docid

    def test_all_docs(self, index):
        assert index.all_docs().docs() == [0, 1, 2, 3]


class TestVocabulary:
    def test_sorted(self, index):
        vocabulary = index.vocabulary("title")
        assert vocabulary == sorted(vocabulary)

    def test_size(self, index):
        assert index.vocabulary_size("title") == len(index.vocabulary("title"))

    def test_empty_field_text_skipped(self):
        store = DocumentStore(["title", "author"])
        store.add_record("a", title="only title")
        index = InvertedIndex(store)
        assert index.vocabulary("author") == []
