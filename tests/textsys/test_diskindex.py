"""Disk-backed index internals: codec round-trips, builder/reader, cache.

The property tests pin the storage formats (LEB128 uvarints, group
varint, delta-compressed posting blocks) against round-trip identity on
adversarial inputs — empty lists, single docs, adjacent docids, random
gaps, and full 64-bit extremes.  The builder/reader tests check that an
index streamed through disk (including the spill/merge path) reproduces
the in-memory :class:`InvertedIndex` exactly.
"""

import random
from array import array

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TextSystemError
from repro.textsys.diskindex import (
    BlockCache,
    DiskIndexBuilder,
    DiskInvertedIndex,
    build_disk_index,
    read_index_meta,
)
from repro.textsys.diskindex.builder import MAGIC
from repro.textsys.diskindex.codec import (
    decode_block_docs,
    decode_block_positions,
    decode_group,
    encode_block,
    encode_group,
    encode_uvarint,
    read_uvarint,
    write_uvarint,
)
from repro.textsys.documents import Document, DocumentStore
from repro.textsys.inverted_index import InvertedIndex

U64_MAX = (1 << 64) - 1
I64_MAX = (1 << 63) - 1


# ----------------------------------------------------------------------
# uvarint
# ----------------------------------------------------------------------
class TestUvarint:
    @given(value=st.integers(0, U64_MAX))
    def test_round_trip(self, value):
        decoded, end = read_uvarint(encode_uvarint(value), 0)
        assert decoded == value
        assert end == len(encode_uvarint(value))

    @given(values=st.lists(st.integers(0, U64_MAX), max_size=50))
    def test_concatenated_stream(self, values):
        buf = bytearray()
        for value in values:
            write_uvarint(buf, value)
        pos, out = 0, []
        for _ in values:
            value, pos = read_uvarint(buf, pos)
            out.append(value)
        assert out == values
        assert pos == len(buf)

    def test_boundaries(self):
        assert encode_uvarint(0) == b"\x00"
        assert encode_uvarint(127) == b"\x7f"
        assert len(encode_uvarint(128)) == 2
        assert read_uvarint(encode_uvarint(U64_MAX), 0)[0] == U64_MAX

    def test_out_of_range(self):
        with pytest.raises(TextSystemError):
            encode_uvarint(-1)
        with pytest.raises(TextSystemError):
            encode_uvarint(1 << 64)

    def test_truncated(self):
        with pytest.raises(TextSystemError):
            read_uvarint(b"\x80", 0)  # continuation bit, no next byte
        with pytest.raises(TextSystemError):
            read_uvarint(b"", 0)

    def test_overlong_overflow(self):
        # Eleven continuation bytes encode > 64 bits.
        with pytest.raises(TextSystemError):
            read_uvarint(b"\xff" * 10 + b"\x01", 0)


# ----------------------------------------------------------------------
# group varint
# ----------------------------------------------------------------------
class TestGroupVarint:
    @given(values=st.lists(st.integers(0, U64_MAX), max_size=40))
    def test_round_trip(self, values):
        buf = encode_group(values)
        decoded, end = decode_group(buf, 0, len(values))
        assert decoded == values
        assert end == len(buf)

    @given(
        values=st.lists(st.integers(0, U64_MAX), min_size=1, max_size=17),
        prefix=st.binary(max_size=4),
    )
    def test_decode_at_offset(self, values, prefix):
        buf = prefix + encode_group(values)
        decoded, _ = decode_group(buf, len(prefix), len(values))
        assert decoded == values

    def test_empty(self):
        assert encode_group([]) == b""
        assert decode_group(b"", 0, 0) == ([], 0)

    def test_width_selection(self):
        # One tag byte + 1/2/4/8 data bytes per value.
        assert len(encode_group([0xFF, 0xFFFF, 0xFFFFFFFF, U64_MAX])) == 16

    def test_truncated(self):
        buf = encode_group([1, 2, 3, 4, 5])
        with pytest.raises(TextSystemError):
            decode_group(buf[:-1], 0, 5)

    def test_out_of_range(self):
        with pytest.raises(TextSystemError):
            encode_group([-1])
        with pytest.raises(TextSystemError):
            encode_group([1 << 64])


# ----------------------------------------------------------------------
# posting blocks
# ----------------------------------------------------------------------
def _strictly_increasing(draw, *, min_value, max_value, min_size, max_size):
    gaps = draw(
        st.lists(
            st.integers(1, 1 << 20), min_size=min_size, max_size=max_size
        )
    )
    docs, current = [], min_value - 1
    for gap in gaps:
        current += gap
        if current > max_value:
            break
        docs.append(current)
    return docs


@st.composite
def block_inputs(draw):
    docs = _strictly_increasing(
        draw, min_value=0, max_value=I64_MAX, min_size=1, max_size=30
    )
    if not docs:
        docs = [draw(st.integers(0, I64_MAX))]
    positions = []
    for _ in docs:
        pos_gaps = draw(st.lists(st.integers(1, 1000), max_size=6))
        current, acc = draw(st.integers(0, 1 << 30)), []
        for gap in pos_gaps:
            acc.append(current)
            current += gap
        positions.append(tuple(acc))
    return docs, tuple(positions)


class TestPostingBlock:
    @given(data=block_inputs())
    @settings(max_examples=200)
    def test_round_trip(self, data):
        docs, positions = data
        prev_last = -1 if docs[0] == 0 else docs[0] - 1
        buf = encode_block(docs, positions, prev_last)
        assert list(decode_block_docs(buf, prev_last)) == docs
        assert decode_block_positions(buf) == positions

    def test_single_doc(self):
        buf = encode_block([7], [(0, 3)], -1)
        assert list(decode_block_docs(buf, -1)) == [7]
        assert decode_block_positions(buf) == ((0, 3),)

    def test_adjacent_docids(self):
        docs = list(range(100, 120))
        buf = encode_block(docs, [()] * len(docs), 99)
        assert list(decode_block_docs(buf, 99)) == docs

    def test_64_bit_extremes(self):
        docs = [0, I64_MAX - 1, I64_MAX]
        buf = encode_block(docs, [(), (), ()], -1)
        decoded = decode_block_docs(buf, -1)
        assert decoded.typecode == "q"
        assert list(decoded) == docs

    def test_block_chaining(self):
        # Consecutive blocks delta against the previous block's last docid.
        first = encode_block([5, 9], [(), ()], -1)
        second = encode_block([10, 40], [(), ()], 9)
        assert list(decode_block_docs(first, -1)) == [5, 9]
        assert list(decode_block_docs(second, 9)) == [10, 40]

    def test_rejects_bad_blocks(self):
        with pytest.raises(TextSystemError):
            encode_block([], [], -1)
        with pytest.raises(TextSystemError):
            encode_block([3, 3], [(), ()], -1)  # not strictly increasing
        with pytest.raises(TextSystemError):
            encode_block([3], [(), ()], -1)  # length mismatch
        with pytest.raises(TextSystemError):
            encode_block([3], [(2, 2)], -1)  # positions not increasing
        with pytest.raises(TextSystemError):
            encode_block([3], [()], 3)  # docid not past prev_last


# ----------------------------------------------------------------------
# block cache
# ----------------------------------------------------------------------
class TestBlockCache:
    def test_hit_miss_accounting(self):
        cache = BlockCache(budget_bytes=1024)
        assert cache.get("a") is None
        cache.put("a", [1], 100)
        assert cache.get("a") == [1]
        stats = cache.stats
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.cached_bytes == 100

    def test_lru_eviction_under_budget(self):
        cache = BlockCache(budget_bytes=250)
        cache.put("a", "A", 100)
        cache.put("b", "B", 100)
        assert cache.get("a") == "A"  # refresh a; b is now LRU
        cache.put("c", "C", 100)
        assert cache.get("b") is None
        assert cache.get("a") == "A"
        assert cache.get("c") == "C"
        assert cache.stats.evictions == 1
        assert cache.stats.cached_bytes <= 250

    def test_zero_budget_disables_caching(self):
        cache = BlockCache(budget_bytes=0)
        cache.put("a", "A", 10)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_oversized_value_bypasses(self):
        cache = BlockCache(budget_bytes=50)
        cache.put("big", "X", 100)
        assert cache.get("big") is None
        assert cache.stats.cached_bytes == 0

    def test_unbounded_budget(self):
        cache = BlockCache(budget_bytes=None)
        for i in range(100):
            cache.put(i, i, 10_000)
        assert cache.stats.evictions == 0
        assert len(cache) == 100

    def test_clear(self):
        cache = BlockCache(budget_bytes=1024)
        cache.put("a", "A", 10)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.cached_bytes == 0


# ----------------------------------------------------------------------
# builder / reader round-trip
# ----------------------------------------------------------------------
WORDS = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta"]


def random_store(rng, doc_count):
    store = DocumentStore(["title", "body"], short_fields=["title"])
    for i in range(doc_count):
        store.add(
            Document(
                f"d{i}",
                {
                    "title": " ".join(rng.choices(WORDS, k=rng.randint(0, 5))),
                    "body": " ".join(rng.choices(WORDS, k=rng.randint(0, 12))),
                },
            )
        )
    return store


def assert_same_index(memory: InvertedIndex, disk: DiskInvertedIndex):
    assert disk.document_count == memory.document_count
    for ordinal in range(memory.document_count):
        assert disk.docid_of(ordinal) == memory.docid_of(ordinal)
    for field in memory.store.field_names:
        assert disk.vocabulary(field) == memory.vocabulary(field)
        for term in memory.vocabulary(field):
            expected = memory.lookup(field, term)
            actual = disk.lookup(field, term)
            assert len(actual) == len(expected), (field, term)
            assert actual.doc_array == expected.doc_array, (field, term)
            for index in range(len(expected)):
                assert actual.positions_at(index) == expected.positions_at(
                    index
                ), (field, term, index)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_disk_index_reproduces_memory_index(seed, tmp_path_factory):
    rng = random.Random(seed)
    store = random_store(rng, rng.randint(1, 40))
    path = tmp_path_factory.mktemp("diskindex") / f"s{seed}.idx"
    # Tiny blocks + forced spills exercise multi-block lists and the
    # k-way segment merge even on small corpora.
    build_disk_index(
        store,
        store.field_names,
        path,
        block_size=rng.choice([1, 2, 4, 128]),
        spill_postings=rng.choice([1, 7, None]),
    )
    with DiskInvertedIndex(path, io_mode=rng.choice(["mmap", "read"])) as disk:
        assert_same_index(InvertedIndex(store), disk)


class TestBuilderReader:
    @pytest.fixture()
    def built(self, tmp_path):
        rng = random.Random(42)
        store = random_store(rng, 30)
        path = tmp_path / "corpus.idx"
        build_disk_index(store, store.field_names, path, block_size=4)
        return store, path

    def test_metadata(self, built):
        store, path = built
        meta = read_index_meta(path)
        assert meta["format"] == "repro-diskindex-v1"
        assert meta["doc_count"] == len(store)
        assert meta["block_size"] == 4
        assert meta["fields"] == list(store.field_names)
        assert meta["file_size"] > 0

    def test_stats_and_io_shape(self, built):
        _, path = built
        with DiskInvertedIndex(path) as disk:
            stats = disk.stats()
            assert stats["doc_count"] == disk.document_count
            io = disk.io_stats()
            assert set(io) >= {"block_fetches", "bytes_read", "cache"}

    def test_missing_term_costs_nothing(self, built):
        _, path = built
        with DiskInvertedIndex(path) as disk:
            before = disk.pages_read
            postings = disk.lookup("title", "zzzznotaword")
            assert len(postings) == 0
            assert disk.pages_read == before
            assert disk.io_stats()["block_fetches"] == 0

    def test_charge_free_directory(self, built):
        store, path = built
        memory = InvertedIndex(store)
        with DiskInvertedIndex(path) as disk:
            for term in memory.vocabulary("body"):
                assert disk.list_length("body", term) == memory.list_length(
                    "body", term
                )
            assert disk.prefix_terms("body", "a") == memory.prefix_terms(
                "body", "a"
            )
            assert disk.pages_read == 0
            assert disk.io_stats()["block_fetches"] == 0

    def test_lookup_prefix_matches_memory(self, built):
        store, path = built
        memory = InvertedIndex(store)
        with DiskInvertedIndex(path) as disk:
            expected = memory.lookup_prefix("body", "g")
            actual = disk.lookup_prefix("body", "g")
            assert [t for t, _ in actual] == [t for t, _ in expected]
            for (_, got), (_, want) in zip(actual, expected):
                assert got.doc_array == want.doc_array
            assert disk.pages_read == memory.pages_read

    def test_rebuild_is_refused(self, built):
        _, path = built
        with DiskInvertedIndex(path) as disk:
            with pytest.raises(TextSystemError):
                disk.rebuild()

    def test_cold_vs_warm_cache_same_charges(self, built):
        _, path = built
        with DiskInvertedIndex(path) as disk:
            first = disk.lookup("body", "alpha")
            _ = first.doc_array, first.positions_at(0)
            cold_pages = disk.pages_read
            fetches_cold = disk.io_stats()["block_fetches"]
            second = disk.lookup("body", "alpha")
            _ = second.doc_array, second.positions_at(0)
            # Charged page reads double (same formula, twice); physical
            # fetches do not (blocks served from cache).
            assert disk.pages_read == 2 * cold_pages
            assert disk.io_stats()["block_fetches"] == fetches_cold
            assert disk.io_stats()["cache"]["hits"] > 0

    def test_zero_cache_budget_refetches(self, built):
        _, path = built
        with DiskInvertedIndex(path, cache_budget=0) as disk:
            for _ in range(2):
                postings = disk.lookup("body", "alpha")
                _ = postings.doc_array
            io = disk.io_stats()
            assert io["cache"]["hits"] == 0
            assert io["block_fetches"] > 0

    def test_corrupted_magic_rejected(self, built, tmp_path):
        _, path = built
        raw = bytearray(path.read_bytes())
        raw[: len(MAGIC)] = b"NOTANIDX"
        bad = tmp_path / "bad.idx"
        bad.write_bytes(bytes(raw))
        with pytest.raises(TextSystemError):
            read_index_meta(bad)
        with pytest.raises(TextSystemError):
            DiskInvertedIndex(bad)

    def test_truncated_file_rejected(self, built, tmp_path):
        _, path = built
        bad = tmp_path / "trunc.idx"
        bad.write_bytes(path.read_bytes()[:10])
        with pytest.raises(TextSystemError):
            read_index_meta(bad)

    def test_builder_abort_cleans_up(self, tmp_path):
        builder = DiskIndexBuilder(["title"], tmp_path / "x.idx")
        builder.add_document(Document("d0", {"title": "alpha beta"}))
        builder.abort()
        assert list(tmp_path.iterdir()) == []

    def test_gallop_into_matches_full_intersection(self, built):
        store, path = built
        memory = InvertedIndex(store)
        with DiskInvertedIndex(path) as disk:
            large = disk.lookup("body", "alpha")
            for probe_docs in ([], [0], list(range(0, 30, 3))):
                probes = array("q", probe_docs)
                expected = [
                    doc
                    for doc in probes
                    if doc in set(memory.lookup("body", "alpha").doc_array)
                ]
                assert list(large.gallop_into(probes)) == expected
