"""Property test: SearchNode.to_expression() parses back to itself."""

import random

from hypothesis import given, settings, strategies as st

from repro.textsys.parser import parse_search
from repro.textsys.query import (
    AndQuery,
    NotQuery,
    OrQuery,
    PhraseQuery,
    ProximityQuery,
    SearchNode,
    TermQuery,
    TruncatedQuery,
)

WORDS = ["alpha", "beta", "gamma", "delta"]
FIELDS = ["title", "author", "abstract"]


def random_node(rng: random.Random, depth: int) -> SearchNode:
    if depth == 0 or rng.random() < 0.45:
        field = rng.choice(FIELDS)
        kind = rng.randrange(4)
        if kind == 0:
            return TermQuery(field, rng.choice(WORDS))
        if kind == 1:
            return PhraseQuery(
                field,
                tuple(rng.choices(WORDS, k=rng.randint(2, 4))),
            )
        if kind == 2:
            return TruncatedQuery(field, rng.choice(WORDS)[: rng.randint(1, 4)])
        return ProximityQuery(
            field, rng.choice(WORDS), rng.choice(WORDS), rng.randint(1, 20)
        )
    kind = rng.randrange(3)
    if kind == 0:
        return AndQuery(
            tuple(random_node(rng, depth - 1) for _ in range(rng.randint(1, 3)))
        )
    if kind == 1:
        return OrQuery(
            tuple(random_node(rng, depth - 1) for _ in range(rng.randint(1, 3)))
        )
    return NotQuery(random_node(rng, depth - 1))


def normalize(node: SearchNode) -> SearchNode:
    """Collapse single-operand connectives (the parser never emits them)."""
    if isinstance(node, AndQuery):
        operands = tuple(normalize(op) for op in node.operands)
        return operands[0] if len(operands) == 1 else AndQuery(operands)
    if isinstance(node, OrQuery):
        operands = tuple(normalize(op) for op in node.operands)
        return operands[0] if len(operands) == 1 else OrQuery(operands)
    if isinstance(node, NotQuery):
        return NotQuery(normalize(node.operand))
    return node


@settings(max_examples=100, deadline=None)
@given(seed=st.integers(0, 1_000_000))
def test_to_expression_round_trips(seed):
    rng = random.Random(seed)
    node = normalize(random_node(rng, depth=3))
    rendered = node.to_expression()
    # Full field names are used, so no field-code mapping is involved.
    parsed = parse_search(rendered, field_codes={})
    assert parsed == node, rendered


@settings(max_examples=100, deadline=None)
@given(seed=st.integers(0, 1_000_000))
def test_round_trip_preserves_term_count(seed):
    rng = random.Random(seed)
    node = normalize(random_node(rng, depth=3))
    parsed = parse_search(node.to_expression(), field_codes={})
    assert parsed.term_count() == node.term_count()
