"""Tests for the vector-space engine and the Section 8 negative result."""

import pytest

from repro.errors import TextSystemError, UnknownFieldError
from repro.textsys.documents import DocumentStore
from repro.textsys.vector import VectorSpaceEngine


@pytest.fixture
def engine():
    store = DocumentStore(["body"])
    store.add_record("rare", body="zeppelin zeppelin zeppelin")
    store.add_record("mixed", body="zeppelin database systems")
    store.add_record("common1", body="database systems design")
    store.add_record("common2", body="database systems implementation")
    store.add_record("empty", body="")
    return VectorSpaceEngine(store, "body")


class TestRanking:
    def test_exact_topic_ranks_first(self, engine):
        results = engine.search(["zeppelin"])
        assert results[0].docid == "rare"
        assert {entry.docid for entry in results} == {"rare", "mixed"}

    def test_scores_sorted_descending(self, engine):
        results = engine.search(["database", "systems"])
        scores = [entry.score for entry in results]
        assert scores == sorted(scores, reverse=True)

    def test_top_k_truncates(self, engine):
        assert len(engine.search(["database"], top_k=1)) == 1

    def test_threshold_filters(self, engine):
        everything = engine.search(["database"], threshold=0.0)
        strict = engine.search(["database"], threshold=0.99)
        assert len(strict) <= len(everything)

    def test_unknown_terms_match_nothing(self, engine):
        assert engine.search(["xylophone"]) == []

    def test_score_of_unrelated_document_is_zero(self, engine):
        assert engine.score("rare", ["database"]) == 0.0

    def test_idf_favors_rare_terms(self, engine):
        """'zeppelin' (2 docs) outweighs 'database' (3 docs) in 'mixed'."""
        assert engine.score("mixed", ["zeppelin"]) > engine.score(
            "mixed", ["database"]
        )

    def test_validation(self, engine):
        with pytest.raises(TextSystemError):
            engine.search(["a"], top_k=0)
        with pytest.raises(UnknownFieldError):
            VectorSpaceEngine(engine.store, "nope")


class TestSection8NegativeResult:
    """The paper's reason for excluding vector-space systems, made concrete:
    query results are not monotone in the term set, so probe-based
    pruning is unsound."""

    def test_adding_a_term_can_add_answers(self, engine):
        """'Adding predicates in a query … may result in more answers.'"""
        narrow = set(engine.result_docids(["zeppelin"]))
        wide = set(engine.result_docids(["zeppelin", "design"]))
        added = wide - narrow
        assert added, "the wider query must surface new documents"
        assert "common1" in added  # matches only the added term

    def test_probe_pruning_would_be_unsound(self, engine):
        """A failed 'probe' on a term subset does NOT imply the full query
        fails — the Boolean implication probing relies on (Q_P(t) unsat
        => Q(t) unsat) is simply false here."""
        probe_terms = ["xylophone"]  # matches nothing at all
        full_terms = ["xylophone", "database"]
        assert engine.result_docids(probe_terms) == []
        assert engine.result_docids(full_terms) != []

    def test_boolean_model_is_monotone_for_contrast(self, engine):
        """The same construction on the Boolean server: adding a conjunct
        can only shrink the result — the monotonicity probing needs."""
        from repro.textsys.query import AndQuery, TermQuery
        from repro.textsys.server import BooleanTextServer

        server = BooleanTextServer(engine.store)
        narrow = set(server.search(TermQuery("body", "zeppelin")).docids)
        wide = set(
            server.search(
                AndQuery(
                    (TermQuery("body", "zeppelin"), TermQuery("body", "design"))
                )
            ).docids
        )
        assert wide <= narrow
