"""Unit tests for the search-expression parser."""

import pytest

from repro.errors import SearchSyntaxError
from repro.textsys.parser import DEFAULT_FIELD_CODES, parse_search, term_node
from repro.textsys.query import (
    AndQuery,
    NotQuery,
    OrQuery,
    PhraseQuery,
    ProximityQuery,
    TermQuery,
    TruncatedQuery,
)


class TestTerms:
    def test_field_code_resolution(self):
        node = parse_search("TI='belief'")
        assert node == TermQuery("title", "belief")

    def test_full_field_name(self):
        node = parse_search("abstract='belief'")
        assert node == TermQuery("abstract", "belief")

    def test_phrase(self):
        node = parse_search("TI='belief update'")
        assert node == PhraseQuery("title", ("belief", "update"))

    def test_truncation(self):
        node = parse_search("TI='filter?'")
        assert node == TruncatedQuery("title", "filter")

    def test_proximity(self):
        node = parse_search("AB='information near10 filtering'")
        assert node == ProximityQuery("abstract", "information", "filtering", 10)

    def test_custom_field_codes(self):
        node = parse_search("XX='a'", field_codes={"XX": "myfield"})
        assert node == TermQuery("myfield", "a")


class TestConnectives:
    def test_and(self):
        node = parse_search("TI='belief update' and AU='smith'")
        assert isinstance(node, AndQuery)
        assert node.term_count() == 2

    def test_or_precedence_lower_than_and(self):
        node = parse_search("TI='a' and TI='b' or TI='c'")
        assert isinstance(node, OrQuery)
        assert isinstance(node.operands[0], AndQuery)

    def test_parentheses(self):
        node = parse_search("TI='a' and (TI='b' or TI='c')")
        assert isinstance(node, AndQuery)
        assert isinstance(node.operands[1], OrQuery)

    def test_not(self):
        node = parse_search("not TI='a'")
        assert isinstance(node, NotQuery)

    def test_case_insensitive_keywords(self):
        node = parse_search("TI='a' AND TI='b' OR NOT TI='c'")
        assert isinstance(node, OrQuery)

    def test_paper_example(self):
        """The Q1 instantiation from Example 3.1."""
        node = parse_search("TI='belief update' and AU='radhika'")
        assert node == AndQuery(
            (
                PhraseQuery("title", ("belief", "update")),
                TermQuery("author", "radhika"),
            )
        )


class TestErrors:
    def test_empty(self):
        with pytest.raises(SearchSyntaxError):
            parse_search("")

    def test_unbalanced_parenthesis(self):
        with pytest.raises(SearchSyntaxError):
            parse_search("(TI='a'")

    def test_missing_quotes(self):
        with pytest.raises(SearchSyntaxError):
            parse_search("TI=belief")

    def test_trailing_garbage(self):
        with pytest.raises(SearchSyntaxError):
            parse_search("TI='a' TI='b'")

    def test_missing_equals(self):
        with pytest.raises(SearchSyntaxError):
            parse_search("TI 'a'")


class TestTermNode:
    def test_dispatch(self):
        assert isinstance(term_node("t", "word"), TermQuery)
        assert isinstance(term_node("t", "two words"), PhraseQuery)
        assert isinstance(term_node("t", "pre?"), TruncatedQuery)
        assert isinstance(term_node("t", "a near3 b"), ProximityQuery)


def test_default_field_codes_cover_bibliographic_fields():
    assert DEFAULT_FIELD_CODES["TI"] == "title"
    assert DEFAULT_FIELD_CODES["AU"] == "author"
    assert DEFAULT_FIELD_CODES["AB"] == "abstract"
