"""Unit tests for the Boolean search AST (term counting, construction)."""

import pytest

from repro.errors import SearchSyntaxError
from repro.textsys.query import (
    AndQuery,
    NotQuery,
    OrQuery,
    PhraseQuery,
    ProximityQuery,
    TermQuery,
    TruncatedQuery,
    and_all,
    data_term,
    make_term,
    or_all,
)


class TestBasicTerms:
    def test_term_requires_normalized_single_word(self):
        TermQuery("title", "belief")
        with pytest.raises(SearchSyntaxError):
            TermQuery("title", "Belief")
        with pytest.raises(SearchSyntaxError):
            TermQuery("title", "two words")
        with pytest.raises(SearchSyntaxError):
            TermQuery("title", "")

    def test_phrase_requires_two_words(self):
        PhraseQuery("title", ("belief", "update"))
        with pytest.raises(SearchSyntaxError):
            PhraseQuery("title", ("belief",))

    def test_truncated(self):
        node = TruncatedQuery("title", "filter")
        assert node.to_expression() == "title='filter?'"

    def test_proximity_validation(self):
        ProximityQuery("abstract", "information", "filtering", 10)
        with pytest.raises(SearchSyntaxError):
            ProximityQuery("abstract", "information", "filtering", 0)


class TestTermCounts:
    """term_count drives the per-search limit M (Section 3.2)."""

    def test_basic_terms_count_one(self):
        assert TermQuery("t", "a").term_count() == 1
        assert PhraseQuery("t", ("a", "b")).term_count() == 1
        assert TruncatedQuery("t", "a").term_count() == 1

    def test_proximity_counts_two(self):
        assert ProximityQuery("t", "a", "b", 3).term_count() == 2

    def test_connectives_sum(self):
        node = AndQuery(
            (
                TermQuery("t", "a"),
                OrQuery((TermQuery("t", "b"), TermQuery("t", "c"))),
                NotQuery(TermQuery("t", "d")),
            )
        )
        assert node.term_count() == 4


class TestMakeTerm:
    def test_single_word(self):
        assert isinstance(make_term("t", "Belief"), TermQuery)

    def test_phrase(self):
        node = make_term("t", "Belief Update")
        assert isinstance(node, PhraseQuery)
        assert node.words == ("belief", "update")

    def test_truncation_syntax(self):
        node = make_term("t", "filter?")
        assert isinstance(node, TruncatedQuery)
        assert node.prefix == "filter"

    def test_empty_rejected(self):
        with pytest.raises(SearchSyntaxError):
            make_term("t", "!!!")


class TestDataTerm:
    def test_no_truncation_interpretation(self):
        """A data value ending in '?' is NOT a truncated search."""
        node = data_term("t", "filter?")
        assert isinstance(node, TermQuery)
        assert node.term == "filter"

    def test_phrase_value(self):
        assert isinstance(data_term("t", "belief update"), PhraseQuery)

    def test_unindexable_rejected(self):
        with pytest.raises(SearchSyntaxError):
            data_term("t", "???")


class TestCombinators:
    def test_and_all_flattens(self):
        a, b, c = (TermQuery("t", w) for w in ("a", "b", "c"))
        node = and_all([AndQuery((a, b)), c])
        assert isinstance(node, AndQuery)
        assert len(node.operands) == 3

    def test_or_all_flattens(self):
        a, b, c = (TermQuery("t", w) for w in ("a", "b", "c"))
        node = or_all([OrQuery((a, b)), c])
        assert len(node.operands) == 3

    def test_singletons_unwrapped(self):
        a = TermQuery("t", "a")
        assert and_all([a]) is a
        assert or_all([a]) is a

    def test_empty_rejected(self):
        with pytest.raises(SearchSyntaxError):
            and_all([])
        with pytest.raises(SearchSyntaxError):
            or_all([])

    def test_operator_overloads(self):
        a, b = TermQuery("t", "a"), TermQuery("t", "b")
        assert isinstance(a & b, AndQuery)
        assert isinstance(a | b, OrQuery)
        assert isinstance(~a, NotQuery)


class TestToExpression:
    def test_round_trippable_rendering(self):
        node = AndQuery(
            (
                PhraseQuery("title", ("belief", "update")),
                OrQuery((TermQuery("author", "smith"), TermQuery("author", "jones"))),
            )
        )
        text = node.to_expression()
        assert "title='belief update'" in text
        assert "author='smith' or author='jones'" in text
