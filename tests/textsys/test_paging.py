"""Tests for the [DH91] disk-page model of inverted-list storage."""

import pytest

from repro.textsys.documents import Document, DocumentStore
from repro.textsys.inverted_index import InvertedIndex
from repro.textsys.query import TermQuery, TruncatedQuery
from repro.textsys.engine import evaluate


def store_with(word: str, doc_count: int) -> DocumentStore:
    store = DocumentStore(["body"])
    for i in range(doc_count):
        store.add(Document(f"d{i}", {"body": word}))
    return store


class TestPageMath:
    def test_pages_for(self):
        index = InvertedIndex(store_with("x", 1), page_capacity=10)
        assert index.pages_for(0) == 0
        assert index.pages_for(1) == 1
        assert index.pages_for(10) == 1
        assert index.pages_for(11) == 2
        assert index.pages_for(25) == 3

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            InvertedIndex(store_with("x", 1), page_capacity=0)

    def test_default_capacity(self):
        index = InvertedIndex(store_with("x", 1))
        assert index.page_capacity == 256


class TestAccounting:
    def test_lookup_charges_pages(self):
        index = InvertedIndex(store_with("hot", 25), page_capacity=10)
        index.lookup("body", "hot")
        assert index.pages_read == 3

    def test_missing_term_reads_nothing(self):
        """The in-memory directory answers misses without disk I/O."""
        index = InvertedIndex(store_with("hot", 25), page_capacity=10)
        index.lookup("body", "cold")
        assert index.pages_read == 0

    def test_pages_accumulate_across_lookups(self):
        index = InvertedIndex(store_with("hot", 25), page_capacity=10)
        index.lookup("body", "hot")
        index.lookup("body", "hot")
        assert index.pages_read == 6

    def test_prefix_expansion_charges_each_list(self):
        store = DocumentStore(["body"])
        for i in range(12):
            store.add(Document(f"a{i}", {"body": "alpha"}))
        for i in range(5):
            store.add(Document(f"b{i}", {"body": "alps"}))
        index = InvertedIndex(store, page_capacity=10)
        evaluate(index, TruncatedQuery("body", "al"))
        # alpha: 12 postings -> 2 pages; alps: 5 postings -> 1 page.
        assert index.pages_read == 3

    def test_boolean_evaluation_reads_every_operand_list(self):
        store = DocumentStore(["body"])
        for i in range(10):
            store.add(Document(f"d{i}", {"body": "x y"}))
        index = InvertedIndex(store, page_capacity=4)
        from repro.textsys.query import AndQuery

        evaluate(index, AndQuery((TermQuery("body", "x"), TermQuery("body", "y"))))
        # two lists of 10 postings at 4/page -> 3 + 3 pages.
        assert index.pages_read == 6

    def test_pages_proportional_to_postings(self):
        """Page reads track the cost model's postings term within one
        page of rounding per list."""
        index = InvertedIndex(store_with("hot", 1000), page_capacity=100)
        result = evaluate(index, TermQuery("body", "hot"))
        assert index.pages_read == result.postings_processed / 100
