"""Unit tests for the Boolean text server (limits, forms, counters)."""

import pytest

from repro.errors import SearchLimitExceeded, TextSystemError
from repro.textsys.query import TermQuery, or_all
from repro.textsys.server import BooleanTextServer


class TestSearch:
    def test_search_string_expression(self, tiny_server):
        result = tiny_server.search("TI='belief update'")
        assert result.docids == ("d1", "d3")

    def test_search_node(self, tiny_server):
        result = tiny_server.search(TermQuery("author", "gravano"))
        assert result.docids == ("d2",)

    def test_short_form_fields_only(self, tiny_server):
        result = tiny_server.search("TI='belief update'")
        document = result.documents[0]
        assert "abstract" not in document.fields
        assert "title" in document.fields

    def test_fail_query_is_empty(self, tiny_server):
        result = tiny_server.search("TI='zzz'")
        assert result.is_empty
        assert not result


class TestTermLimit:
    def test_limit_enforced(self, tiny_store):
        server = BooleanTextServer(tiny_store, term_limit=2)
        ok = or_all([TermQuery("title", "belief"), TermQuery("title", "text")])
        server.search(ok)
        too_many = or_all(
            [TermQuery("title", w) for w in ("belief", "text", "systems")]
        )
        with pytest.raises(SearchLimitExceeded):
            server.search(too_many)

    def test_default_limit_is_mercury(self, tiny_server):
        assert tiny_server.term_limit == 70

    def test_invalid_limit_rejected(self, tiny_store):
        with pytest.raises(TextSystemError):
            BooleanTextServer(tiny_store, term_limit=0)


class TestRetrieve:
    def test_long_form_has_all_fields(self, tiny_server):
        document = tiny_server.retrieve("d1")
        assert "abstract" in document.fields

    def test_retrieve_many(self, tiny_server):
        documents = tiny_server.retrieve_many(["d1", "d2"])
        assert [d.docid for d in documents] == ["d1", "d2"]


class TestCounters:
    def test_search_counters(self, tiny_server):
        tiny_server.search("TI='belief'")
        counters = tiny_server.counters
        assert counters.searches == 1
        assert counters.postings_processed == 2
        assert counters.short_documents == 2
        assert counters.long_documents == 0

    def test_retrieve_counter(self, tiny_server):
        tiny_server.retrieve("d1")
        assert tiny_server.counters.long_documents == 1

    def test_reset_and_snapshot(self, tiny_server):
        tiny_server.search("TI='belief'")
        snap = tiny_server.counters.snapshot()
        tiny_server.counters.reset()
        assert snap.searches == 1
        assert tiny_server.counters.searches == 0


def test_meta_information(tiny_server):
    assert tiny_server.document_count == 4
    assert tiny_server.document_frequency("title", "belief") == 2


class TestCounterDeltas:
    def test_as_dict_declaration_order(self, tiny_server):
        tiny_server.search("TI='belief'")
        tiny_server.retrieve("d1")
        assert tiny_server.counters.as_dict() == {
            "searches": 1,
            "postings_processed": 2,
            "short_documents": 2,
            "long_documents": 1,
        }

    def test_subtraction_yields_the_delta(self, tiny_server):
        tiny_server.search("TI='belief'")
        before = tiny_server.counters.snapshot()
        tiny_server.search("TI='systems'")
        tiny_server.retrieve("d2")
        delta = tiny_server.counters - before
        assert delta.searches == 1
        assert delta.long_documents == 1
        assert delta.short_documents == tiny_server.counters.short_documents - 2

    def test_subtraction_requires_counters(self, tiny_server):
        with pytest.raises(TypeError):
            tiny_server.counters - 3

    def test_counter_delta_rows_feed_tables(self, tiny_server):
        from repro.bench.reporting import counter_delta_rows

        before = tiny_server.counters.snapshot()
        tiny_server.search("TI='belief'")
        rows = counter_delta_rows(before, tiny_server.counters)
        assert rows[0] == ["searches", 1]
        assert [name for name, _ in rows] == [
            "searches",
            "postings_processed",
            "short_documents",
            "long_documents",
        ]
