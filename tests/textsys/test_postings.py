"""Unit + property tests for posting lists and sorted-list merges."""

import pytest
from hypothesis import given, strategies as st

from repro.textsys.postings import (
    Posting,
    PostingList,
    difference,
    intersect,
    positional_intersect,
    union,
)

doc_sets = st.lists(st.integers(0, 50), unique=True, max_size=20).map(sorted)


def plist(docs):
    return PostingList.from_docs(docs)


class TestPostingList:
    def test_sorted_enforced(self):
        with pytest.raises(ValueError):
            PostingList([Posting(2), Posting(1)])

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            PostingList([Posting(1), Posting(1)])

    def test_docs_and_len(self):
        lst = plist([1, 3, 5])
        assert lst.docs() == [1, 3, 5]
        assert len(lst) == 3

    def test_equality(self):
        assert plist([1, 2]) == plist([1, 2])
        assert plist([1]) != plist([2])


class TestSetOperations:
    def test_intersect(self):
        assert intersect(plist([1, 2, 3]), plist([2, 3, 4])).docs() == [2, 3]

    def test_union(self):
        assert union(plist([1, 3]), plist([2, 3])).docs() == [1, 2, 3]

    def test_difference(self):
        assert difference(plist([1, 2, 3]), plist([2])).docs() == [1, 3]

    def test_empty_operands(self):
        assert intersect(plist([]), plist([1])).docs() == []
        assert union(plist([]), plist([1])).docs() == [1]
        assert difference(plist([1]), plist([])).docs() == [1]


class TestPositionalIntersect:
    def test_phrase_gap(self):
        left = PostingList([Posting(1, (0, 5))])
        right = PostingList([Posting(1, (1, 9))])
        out = positional_intersect(left, right, min_gap=1, max_gap=1)
        assert out.docs() == [1]
        assert out[0].positions == (1,)

    def test_no_match_when_gap_wrong(self):
        left = PostingList([Posting(1, (0,))])
        right = PostingList([Posting(1, (3,))])
        assert len(positional_intersect(left, right, 1, 1)) == 0

    def test_proximity_either_order(self):
        left = PostingList([Posting(1, (10,))])
        right = PostingList([Posting(1, (7,))])
        out = positional_intersect(left, right, min_gap=-5, max_gap=5)
        assert out.docs() == [1]

    def test_chaining_three_word_phrase(self):
        # doc 1: "a b c" at positions 0 1 2
        a = PostingList([Posting(1, (0,))])
        b = PostingList([Posting(1, (1,))])
        c = PostingList([Posting(1, (2,))])
        ab = positional_intersect(a, b, 1, 1)
        abc = positional_intersect(ab, c, 1, 1)
        assert abc.docs() == [1]


@given(doc_sets, doc_sets)
def test_merges_match_python_sets(left, right):
    """The linear-time merges agree with Python set semantics."""
    l, r = plist(left), plist(right)
    assert intersect(l, r).docs() == sorted(set(left) & set(right))
    assert union(l, r).docs() == sorted(set(left) | set(right))
    assert difference(l, r).docs() == sorted(set(left) - set(right))


@given(doc_sets, doc_sets, doc_sets)
def test_merge_algebra(a, b, c):
    """Distributivity spot-check: A ∩ (B ∪ C) == (A ∩ B) ∪ (A ∩ C)."""
    pa, pb, pc = plist(a), plist(b), plist(c)
    left = intersect(pa, union(pb, pc))
    right = union(intersect(pa, pb), intersect(pa, pc))
    assert left.docs() == right.docs()
