"""Unit + property tests for posting lists and sorted-list merges."""

from functools import reduce

import pytest
from hypothesis import given, strategies as st

from repro.textsys.postings import (
    GALLOP_RATIO,
    Posting,
    PostingList,
    difference,
    intersect,
    intersect_linear,
    intersect_many,
    positional_intersect,
    union,
    union_many,
)

doc_sets = st.lists(st.integers(0, 50), unique=True, max_size=20).map(sorted)


def plist(docs):
    return PostingList.from_docs(docs)


class TestPostingList:
    def test_sorted_enforced(self):
        with pytest.raises(ValueError):
            PostingList([Posting(2), Posting(1)])

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            PostingList([Posting(1), Posting(1)])

    def test_docs_and_len(self):
        lst = plist([1, 3, 5])
        assert lst.docs() == [1, 3, 5]
        assert len(lst) == 3

    def test_equality(self):
        assert plist([1, 2]) == plist([1, 2])
        assert plist([1]) != plist([2])


class TestSetOperations:
    def test_intersect(self):
        assert intersect(plist([1, 2, 3]), plist([2, 3, 4])).docs() == [2, 3]

    def test_union(self):
        assert union(plist([1, 3]), plist([2, 3])).docs() == [1, 2, 3]

    def test_difference(self):
        assert difference(plist([1, 2, 3]), plist([2])).docs() == [1, 3]

    def test_empty_operands(self):
        assert intersect(plist([]), plist([1])).docs() == []
        assert union(plist([]), plist([1])).docs() == [1]
        assert difference(plist([1]), plist([])).docs() == [1]


class TestPositionalIntersect:
    def test_phrase_gap(self):
        left = PostingList([Posting(1, (0, 5))])
        right = PostingList([Posting(1, (1, 9))])
        out = positional_intersect(left, right, min_gap=1, max_gap=1)
        assert out.docs() == [1]
        assert out[0].positions == (1,)

    def test_no_match_when_gap_wrong(self):
        left = PostingList([Posting(1, (0,))])
        right = PostingList([Posting(1, (3,))])
        assert len(positional_intersect(left, right, 1, 1)) == 0

    def test_proximity_either_order(self):
        left = PostingList([Posting(1, (10,))])
        right = PostingList([Posting(1, (7,))])
        out = positional_intersect(left, right, min_gap=-5, max_gap=5)
        assert out.docs() == [1]

    def test_chaining_three_word_phrase(self):
        # doc 1: "a b c" at positions 0 1 2
        a = PostingList([Posting(1, (0,))])
        b = PostingList([Posting(1, (1,))])
        c = PostingList([Posting(1, (2,))])
        ab = positional_intersect(a, b, 1, 1)
        abc = positional_intersect(ab, c, 1, 1)
        assert abc.docs() == [1]


@given(doc_sets, doc_sets)
def test_merges_match_python_sets(left, right):
    """The linear-time merges agree with Python set semantics."""
    l, r = plist(left), plist(right)
    assert intersect(l, r).docs() == sorted(set(left) & set(right))
    assert union(l, r).docs() == sorted(set(left) | set(right))
    assert difference(l, r).docs() == sorted(set(left) - set(right))


@given(doc_sets, doc_sets, doc_sets)
def test_merge_algebra(a, b, c):
    """Distributivity spot-check: A ∩ (B ∪ C) == (A ∩ B) ∪ (A ∩ C)."""
    pa, pb, pc = plist(a), plist(b), plist(c)
    left = intersect(pa, union(pb, pc))
    right = union(intersect(pa, pb), intersect(pa, pc))
    assert left.docs() == right.docs()


# ----------------------------------------------------------------------
# accelerated kernels == linear kernels
# ----------------------------------------------------------------------
class TestGallopingIntersect:
    """Skewed pairs take the galloping path; output must not change."""

    def test_skewed_pair_gallops_correctly(self):
        small = plist([3, 500, 999, 2001])
        large = plist(range(0, 3000, 3))
        assert len(large) >= GALLOP_RATIO * len(small)  # galloping path
        assert intersect(small, large).docs() == [3, 999, 2001]
        assert intersect(large, small).docs() == [3, 999, 2001]

    def test_small_list_past_end_of_large(self):
        small = plist([100, 200])
        large = plist(range(0, 50))
        assert len(large) >= GALLOP_RATIO * len(small)
        assert intersect(small, large).docs() == []

    @given(st.lists(st.integers(0, 30), unique=True, max_size=3).map(sorted))
    def test_gallop_matches_sets_against_long_list(self, small):
        large = plist(range(0, 400, 2))
        result = intersect(plist(small), large).docs()
        assert result == sorted(set(small) & set(range(0, 400, 2)))

    @given(doc_sets, doc_sets)
    def test_dispatching_intersect_equals_pinned_linear(self, left, right):
        l, r = plist(left), plist(right)
        assert intersect(l, r).docs() == intersect_linear(l, r).docs()


class TestKWayKernels:
    def test_union_many_of_none_is_empty(self):
        assert union_many([]).docs() == []

    def test_union_many_matches_pairwise_fold(self):
        lists = [plist([1, 5]), plist([2, 5, 9]), plist([]), plist([0, 9])]
        folded = reduce(union, lists)
        assert union_many(lists).docs() == folded.docs()

    def test_intersect_many_requires_lists(self):
        with pytest.raises(ValueError):
            intersect_many([])

    @given(st.lists(doc_sets, min_size=1, max_size=6))
    def test_kway_kernels_match_python_sets(self, doc_lists):
        lists = [plist(docs) for docs in doc_lists]
        union_expected = sorted(set().union(*map(set, doc_lists)))
        intersect_expected = sorted(
            set.intersection(*map(set, doc_lists))
        ) if all(doc_lists) else []
        assert union_many(lists).docs() == union_expected
        assert intersect_many(lists).docs() == intersect_expected


class TestArrayBackedRepresentation:
    def test_positions_materialized_only_when_present(self):
        bare = plist([1, 2, 3])
        assert bare.positions_at(1) == ()
        positional = PostingList([Posting(1, (4, 7))])
        assert positional.positions_at(0) == (4, 7)

    def test_without_positions_shares_docids(self):
        positional = PostingList([Posting(1, (4,)), Posting(2, (5,))])
        stripped = positional.without_positions()
        assert stripped.docs() == [1, 2]
        assert stripped.positions_at(0) == ()
        assert stripped == plist([1, 2])  # positions-free equality

    def test_merges_drop_positions(self):
        left = PostingList([Posting(1, (0,)), Posting(2, (3,))])
        right = PostingList([Posting(2, (8,))])
        assert intersect(left, right)[0].positions == ()
        assert union(left, right)[0].positions == ()
