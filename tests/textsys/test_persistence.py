"""Unit tests for document-store persistence."""

import gzip
import json

import pytest

from repro.errors import TextSystemError
from repro.textsys.persistence import load_store, save_store
from repro.textsys.server import BooleanTextServer


class TestRoundTrip:
    def test_documents_survive(self, tiny_store, tmp_path):
        path = tmp_path / "store.jsonl"
        save_store(tiny_store, path)
        loaded = load_store(path)
        assert loaded.docids() == tiny_store.docids()
        for docid in tiny_store.docids():
            assert dict(loaded.get(docid).fields) == dict(
                tiny_store.get(docid).fields
            )

    def test_configuration_survives(self, tiny_store, tmp_path):
        path = tmp_path / "store.jsonl"
        save_store(tiny_store, path)
        loaded = load_store(path)
        assert loaded.field_names == tiny_store.field_names
        assert loaded.short_fields == tiny_store.short_fields

    def test_search_equivalent_after_reload(self, tiny_store, tmp_path):
        path = tmp_path / "store.jsonl"
        save_store(tiny_store, path)
        original = BooleanTextServer(tiny_store)
        reloaded = BooleanTextServer(load_store(path))
        for expression in ("TI='belief update'", "AU='gravano'", "TI='zzz'"):
            assert (
                original.search(expression).docids
                == reloaded.search(expression).docids
            )

    def test_unicode_round_trip(self, tmp_path):
        from repro.textsys.documents import DocumentStore

        store = DocumentStore(["title"])
        store.add_record("d1", title="naïve Bayes — résumé")
        path = tmp_path / "u.jsonl"
        save_store(store, path)
        assert load_store(path).get("d1").field("title") == "naïve Bayes — résumé"


class TestGzipAndHeader:
    def test_gz_suffix_round_trip(self, tiny_store, tmp_path):
        path = tmp_path / "store.jsonl.gz"
        save_store(tiny_store, path)
        # Really gzip on disk, not plain text with a misleading name.
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        loaded = load_store(path)
        assert loaded.docids() == tiny_store.docids()
        for docid in tiny_store.docids():
            assert dict(loaded.get(docid).fields) == dict(
                tiny_store.get(docid).fields
            )

    def test_header_declares_count(self, tiny_store, tmp_path):
        path = tmp_path / "store.jsonl"
        save_store(tiny_store, path)
        header = json.loads(path.read_text().splitlines()[0])
        assert header["count"] == len(tiny_store)

    def test_progress_callback(self, tiny_store, tmp_path):
        path = tmp_path / "store.jsonl.gz"
        save_store(tiny_store, path)
        calls = []
        load_store(path, progress=lambda loaded, total: calls.append((loaded, total)))
        # Tiny store: only the final call fires, with the declared total.
        assert calls == [(len(tiny_store), len(tiny_store))]

    def test_count_mismatch_is_an_error(self, tiny_store, tmp_path):
        path = tmp_path / "store.jsonl"
        save_store(tiny_store, path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")  # drop one document
        with pytest.raises(TextSystemError, match="declares"):
            load_store(path)

    def test_pre_count_files_still_load(self, tiny_store, tmp_path):
        path = tmp_path / "store.jsonl"
        save_store(tiny_store, path)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        del header["count"]
        path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        calls = []
        loaded = load_store(
            path, progress=lambda n, total: calls.append((n, total))
        )
        assert loaded.docids() == tiny_store.docids()
        assert calls == [(len(tiny_store), None)]

    def test_bad_count_rejected(self, tmp_path):
        path = tmp_path / "store.jsonl"
        path.write_text(
            '{"format": "repro-docstore-v1", "fields": ["t"], '
            '"short_fields": [], "count": -3}\n'
        )
        with pytest.raises(TextSystemError, match="count"):
            load_store(path)

    def test_corrupt_gzip_reports_cleanly(self, tmp_path):
        path = tmp_path / "store.jsonl.gz"
        path.write_bytes(b"\x1f\x8bnot really gzip")
        with pytest.raises((TextSystemError, OSError, gzip.BadGzipFile)):
            load_store(path)


class TestErrors:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TextSystemError, match="empty"):
            load_store(path)

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(TextSystemError, match="header"):
            load_store(path)

    def test_unknown_format(self, tmp_path):
        path = tmp_path / "fmt.jsonl"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(TextSystemError, match="format"):
            load_store(path)

    def test_bad_record(self, tmp_path):
        path = tmp_path / "rec.jsonl"
        path.write_text(
            '{"format": "repro-docstore-v1", "fields": ["t"], "short_fields": []}\n'
            "{broken\n"
        )
        with pytest.raises(TextSystemError, match="record"):
            load_store(path)
