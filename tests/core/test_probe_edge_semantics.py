"""Pins the probe reducer's edge semantics (see ``_run_probe``'s docstring).

Two kinds of tuple never survive a probe node, and neither costs a probe:

- a row whose probe key contains NULL (NULLs never join under SQL
  semantics), and
- a value group whose representative value is unindexable — the text
  system raises :class:`SearchSyntaxError` because the value tokenizes
  to no words, so the probe cannot even be expressed.

These rules mirror ``instantiate_predicates`` so probe reducers and
full join methods prune exactly the same tuples.
"""

import pytest

from repro.core.executor import execute_plan
from repro.core.joinmethods.base import JoinContext
from repro.core.optimizer.multiquery import MultiJoinQuery
from repro.core.optimizer.plan import ProbeNode, ScanNode
from repro.core.query import TextJoinPredicate
from repro.gateway.client import TextClient
from repro.relational.catalog import Catalog
from repro.relational.schema import Schema
from repro.relational.types import DataType
from repro.textsys.documents import DocumentStore
from repro.textsys.server import BooleanTextServer


@pytest.fixture
def probe_world():
    """Three papers; an author table with NULL and unindexable names."""
    catalog = Catalog()
    author = catalog.create_table(
        "author", Schema.of(("name", DataType.VARCHAR))
    )
    author.insert_many(
        [
            ["garcia"],      # joins d1
            [None],          # NULL probe key: dropped without a probe
            ["..."],         # tokenizes to no words: dropped without a probe
            ["nomatch"],     # probed, but matches nothing
        ]
    )
    store = DocumentStore(["title", "author"], short_fields=["title", "author"])
    store.add_record("d1", title="join queries", author="garcia molina")
    store.add_record("d2", title="text sources", author="gravano")
    store.add_record("d3", title="cost models", author="chaudhuri")
    server = BooleanTextServer(store)

    query = MultiJoinQuery(
        relations=("author",),
        text_predicates=(TextJoinPredicate("author.name", "author"),),
        text_source="m",
    )
    plan = ProbeNode(
        child=ScanNode("author"),
        probe_columns=("author.name",),
        probe_predicates=(TextJoinPredicate("author.name", "author"),),
    )
    return catalog, server, query, plan


def _run(catalog, server, query, plan):
    context = JoinContext(catalog, TextClient(server))
    execution = execute_plan(plan, query, context)
    return execution, context.client


def test_null_probe_keys_are_silently_dropped(probe_world):
    execution, client = _run(*probe_world)
    names = [row["author.name"] for row in execution.rows]
    assert None not in names


def test_unindexable_groups_are_dropped_without_a_probe(probe_world):
    execution, client = _run(*probe_world)
    names = [row["author.name"] for row in execution.rows]
    assert "..." not in names
    # Only the two indexable non-NULL groups cost a probe each:
    # "garcia" (kept) and "nomatch" (probed empty).
    assert client.ledger.searches == 2


def test_only_matching_groups_survive(probe_world):
    execution, _ = _run(*probe_world)
    assert [row["author.name"] for row in execution.rows] == ["garcia"]


def test_dropped_rows_cost_nothing(probe_world):
    """A table of ONLY null/unindexable keys sends zero foreign calls."""
    _, server, query, plan = probe_world
    catalog = Catalog()
    author = catalog.create_table(
        "author", Schema.of(("name", DataType.VARCHAR))
    )
    author.insert_many([[None], ["..."], ["?!"]])
    execution, client = _run(catalog, server, query, plan)
    assert execution.rows == []
    assert client.ledger.searches == 0
    assert client.ledger.total == 0.0
