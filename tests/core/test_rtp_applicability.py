"""Applicability of RTP-family methods when fields are hidden from the
short form — "only two methods are universally applicable: TS and P+TS"
(Section 7.2)."""

import pytest

from repro.core.inputs import build_cost_inputs
from repro.core.joinmethods import (
    JoinContext,
    ProbeRtp,
    ProbeTupleSubstitution,
    RelationalTextProcessing,
    SemiJoinRtp,
    SingleColumnSemiJoinRtp,
    TupleSubstitution,
)
from repro.core.optimizer.single_join import enumerate_method_choices
from repro.core.query import TextJoinPredicate, TextJoinQuery, TextSelection
from repro.errors import JoinMethodError
from repro.gateway.client import TextClient
from repro.relational.catalog import Catalog
from repro.relational.schema import Schema
from repro.relational.types import DataType
from repro.textsys.documents import DocumentStore
from repro.textsys.server import BooleanTextServer


@pytest.fixture
def hidden_author_context():
    """The author field is searchable but NOT returned in the short form."""
    catalog = Catalog()
    table = catalog.create_table(
        "r", Schema.of(("name", DataType.VARCHAR), ("topic", DataType.VARCHAR))
    )
    table.insert_many([["ada", "joins"], ["bob", "joins"], ["cyd", "sorting"]])
    store = DocumentStore(
        ["title", "author"], short_fields=["title"]  # author hidden
    )
    store.add_record("d1", title="joins paper", author="ada")
    store.add_record("d2", title="sorting paper", author="cyd")
    server = BooleanTextServer(store)
    return JoinContext(catalog, TextClient(server))


def query():
    return TextJoinQuery(
        relation="r",
        join_predicates=(
            TextJoinPredicate("r.name", "author"),
            TextJoinPredicate("r.topic", "title"),
        ),
        text_selections=(TextSelection("paper", "title"),),
    )


class TestApplicability:
    def test_ts_and_probing_ts_still_work(self, hidden_author_context):
        q = query()
        ts = TupleSubstitution().execute(q, hidden_author_context)
        p_ts = ProbeTupleSubstitution(("r.topic",)).execute(
            q, hidden_author_context
        )
        assert ts.result_keys() == p_ts.result_keys()
        assert len(ts.result_keys()) == 2  # ada/joins/d1, cyd/sorting/d2

    def test_rtp_family_not_applicable(self, hidden_author_context):
        q = query()
        for method in (
            RelationalTextProcessing(),
            SemiJoinRtp(),
            SingleColumnSemiJoinRtp("r.name"),
        ):
            assert not method.applicable(q, hidden_author_context)
            with pytest.raises(JoinMethodError):
                method.execute(q, hidden_author_context)

    def test_p_rtp_applicable_only_when_remaining_fields_visible(
        self, hidden_author_context
    ):
        q = query()
        # Probe on name -> remaining predicate is on the visible title.
        assert ProbeRtp(("r.name",)).applicable(q, hidden_author_context)
        # Probe on topic -> remaining predicate is on the hidden author.
        assert not ProbeRtp(("r.topic",)).applicable(q, hidden_author_context)

    def test_applicable_p_rtp_is_correct(self, hidden_author_context):
        q = query()
        p_rtp = ProbeRtp(("r.name",)).execute(q, hidden_author_context)
        ts = TupleSubstitution().execute(q, hidden_author_context)
        assert p_rtp.result_keys() == ts.result_keys()


class TestOptimizerRespectsVisibility:
    def test_rtp_family_absent_from_choices(self, hidden_author_context):
        q = query()
        inputs = build_cost_inputs(q, hidden_author_context)
        names = {
            choice.estimate.method
            for choice in enumerate_method_choices(q, inputs)
        }
        assert "RTP" not in names
        assert "SJ+RTP" not in names
        assert "TS" in names

    def test_all_fields_visible_restores_choices(self, tiny_context):
        q = TextJoinQuery(
            relation="student",
            join_predicates=(TextJoinPredicate("student.name", "author"),),
            text_selections=(TextSelection("belief update", "title"),),
        )
        inputs = build_cost_inputs(q, tiny_context)
        names = {
            choice.estimate.method
            for choice in enumerate_method_choices(q, inputs)
        }
        assert {"RTP", "SJ+RTP", "TS"} <= names
