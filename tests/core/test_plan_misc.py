"""Small branch-coverage tests for plan utilities and method labels."""

import pytest

from repro.core.joinmethods import (
    ProbeRtp,
    ProbeSemiJoin,
    ProbeTupleSubstitution,
    TupleSubstitution,
)
from repro.core.optimizer.plan import PlanNode, plan_signature
from repro.core.query import ResultShape, TextJoinPredicate, TextJoinQuery
from repro.errors import PlanError


class TestPlanSignature:
    def test_unknown_node_rejected(self):
        class Strange(PlanNode):
            def relations(self):
                return frozenset()

            def probed_columns(self):
                return frozenset()

        with pytest.raises(PlanError):
            plan_signature(Strange())


class TestMethodLabels:
    def test_probe_labels_use_bare_column_names(self):
        assert ProbeTupleSubstitution(("student.advisor",)).name == "P(advisor)+TS"
        assert ProbeRtp(("student.name", "student.advisor")).name == (
            "P(name,advisor)+RTP"
        )
        assert ProbeSemiJoin(("student.name",)).name == "P(name)"
        assert ProbeSemiJoin().name == "P(all)"

    def test_ts_variant_labels(self):
        assert TupleSubstitution().name == "TS"
        assert TupleSubstitution(distinct_only=False).name == "TS(naive)"


class TestMethodExecutionRepr:
    def test_repr_mentions_shape_and_cost(self, tiny_context):
        query = TextJoinQuery(
            relation="student",
            join_predicates=(TextJoinPredicate("student.name", "author"),),
            shape=ResultShape.TUPLES,
        )
        execution = TupleSubstitution().execute(query, tiny_context)
        text = repr(execution)
        assert "tuples" in text
        assert "TS" in text


class TestQueryRepr:
    def test_repr_lists_predicates(self):
        query = TextJoinQuery(
            relation="student",
            join_predicates=(TextJoinPredicate("student.name", "author"),),
        )
        text = repr(query)
        assert "student.name in author" in text
        assert "shape=pairs" in text
