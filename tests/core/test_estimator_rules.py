"""Unit tests for the plan estimator's selectivity and pricing rules."""

import pytest

from repro.core.joinmethods.base import JoinContext
from repro.core.optimizer.estimator import PlanEstimator
from repro.core.optimizer.multiquery import MultiJoinQuery, RelationalJoinPredicate
from repro.core.optimizer.plan import JoinNode, ProbeNode, ScanNode, TextJoinNode
from repro.core.query import TextJoinPredicate
from repro.gateway.client import TextClient
from repro.relational.catalog import Catalog
from repro.relational.expressions import ColumnRef, Comparison
from repro.relational.schema import Schema
from repro.relational.types import DataType
from repro.textsys.documents import DocumentStore
from repro.textsys.server import BooleanTextServer


@pytest.fixture
def world():
    catalog = Catalog()
    left = catalog.create_table(
        "l", Schema.of(("k", DataType.VARCHAR), ("who", DataType.VARCHAR))
    )
    right = catalog.create_table(
        "r", Schema.of(("k", DataType.VARCHAR), ("x", DataType.INTEGER))
    )
    for i in range(10):
        left.insert([f"k{i % 5}", f"person{i % 2}"])
    for i in range(6):
        right.insert([f"k{i % 3}", i])

    store = DocumentStore(["author"], short_fields=["author"])
    store.add_record("d1", author="person0")
    store.add_record("d2", author="someone else")
    server = BooleanTextServer(store)
    query = MultiJoinQuery(
        relations=("l", "r"),
        text_predicates=(TextJoinPredicate("l.who", "author"),),
        join_predicates=(
            RelationalJoinPredicate(
                Comparison("=", ColumnRef("l.k"), ColumnRef("r.k")),
                ("l", "r"),
            ),
        ),
        text_source="doc",
    )
    return catalog, server, query


def estimator_for(world):
    catalog, server, query = world
    return query, PlanEstimator(query, JoinContext(catalog, TextClient(server)))


class TestJoinSelectivity:
    def _join(self, query, estimator, op):
        predicate = RelationalJoinPredicate(
            Comparison(op, ColumnRef("l.k"), ColumnRef("r.k")), ("l", "r")
        )
        join = JoinNode(
            left=ScanNode(relation="l"),
            right=ScanNode(relation="r"),
            relational_predicates=(predicate,),
        )
        estimator.annotate(join)
        return join

    def test_equality_uses_max_distinct(self, world):
        query, estimator = estimator_for(world)
        join = self._join(query, estimator, "=")
        # 10 * 6 / max(5, 3) = 12
        assert join.estimated_rows == pytest.approx(60 / 5)

    def test_inequality_complement(self, world):
        query, estimator = estimator_for(world)
        join = self._join(query, estimator, "!=")
        assert join.estimated_rows == pytest.approx(60 * (1 - 1 / 5))

    def test_range_one_third(self, world):
        query, estimator = estimator_for(world)
        join = self._join(query, estimator, "<")
        assert join.estimated_rows == pytest.approx(20.0)

    def test_relational_join_priced_with_cj(self, world):
        query, estimator = estimator_for(world)
        join = self._join(query, estimator, "=")
        assert join.estimated_cost == pytest.approx(
            estimator.join_comparison_cost * 60
        )


class TestTextSidePricing:
    def test_text_match_join_priced_with_ca(self, world):
        query, estimator = estimator_for(world)
        text_node = TextJoinNode(
            child=ScanNode(relation="l"),
            method=__import__(
                "repro.core.joinmethods", fromlist=["TupleSubstitution"]
            ).TupleSubstitution(),
            available_predicates=query.text_predicates,
        )
        estimator.annotate(text_node)
        join = JoinNode(
            left=text_node,
            right=ScanNode(relation="r"),
            relational_predicates=query.join_predicates,
        )
        estimator.annotate(join)
        c_a = estimator.context.client.ledger.constants.rtp_per_document
        pairs = text_node.estimated_rows * 6
        expected = text_node.estimated_cost + c_a * pairs
        assert join.estimated_cost == pytest.approx(expected)

    def test_probe_reduces_by_selectivity(self, world):
        query, estimator = estimator_for(world)
        scan = ScanNode(relation="l")
        probe = ProbeNode(
            child=scan,
            probe_columns=("l.who",),
            probe_predicates=query.text_predicates,
        )
        estimator.annotate(probe)
        # person0 matches, person1 does not: s = 0.5.
        assert probe.estimated_rows == pytest.approx(10 * 0.5)

    def test_probe_cost_counts_distinct_groups(self, world):
        query, estimator = estimator_for(world)
        scan = ScanNode(relation="l")
        probe = ProbeNode(
            child=scan,
            probe_columns=("l.who",),
            probe_predicates=query.text_predicates,
        )
        estimator.annotate(probe)
        c_i = estimator.context.client.ledger.constants.invocation
        # 2 distinct who-values -> 2 probes minimum.
        assert probe.estimated_cost >= 2 * c_i
