"""Tests for the bushy execution space (and multi-join long_form)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.executor import execute_plan
from repro.core.joinmethods.base import JoinContext
from repro.core.optimizer.enumerate import optimize_multijoin
from repro.core.optimizer.estimator import PlanEstimator
from repro.core.optimizer.multiquery import MultiJoinQuery, RelationalJoinPredicate
from repro.core.query import TextJoinPredicate
from repro.gateway.client import TextClient
from repro.relational.catalog import Catalog
from repro.relational.expressions import ColumnRef, Comparison
from repro.relational.schema import Schema
from repro.relational.types import DataType
from repro.textsys.documents import DocumentStore
from repro.textsys.server import BooleanTextServer

from tests.core.test_multijoin_properties import (
    plan_result,
    random_world,
    reference_result,
)


class TestBushyCorrectness:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_bushy_matches_reference(self, seed):
        catalog, server, query = random_world(seed)
        expected = reference_result(catalog, server, query)
        context = JoinContext(catalog, TextClient(server))
        estimator = PlanEstimator(query, context)
        optimized = optimize_multijoin(query, estimator, space="bushy")
        execution = execute_plan(
            optimized.plan, query, JoinContext(catalog, TextClient(server))
        )
        assert plan_result(execution, query) == expected, seed

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_bushy_never_worse_than_extended(self, seed):
        catalog, server, query = random_world(seed)
        costs = {}
        for space in ("extended", "bushy"):
            context = JoinContext(catalog, TextClient(server))
            estimator = PlanEstimator(query, context)
            costs[space] = optimize_multijoin(
                query, estimator, space=space
            ).estimated_cost
        assert costs["bushy"] <= costs["extended"] + 1e-9, seed


@pytest.fixture
def star_world():
    """A 3-relation star where a bushy tree is natural: two dimension
    relations each join the fact relation, and the text source touches
    only one dimension."""
    rng = random.Random(4)
    catalog = Catalog()
    fact = catalog.create_table(
        "fact",
        Schema.of(
            ("d1", DataType.VARCHAR),
            ("d2", DataType.VARCHAR),
        ),
    )
    dim1 = catalog.create_table(
        "dim1", Schema.of(("key", DataType.VARCHAR), ("who", DataType.VARCHAR))
    )
    dim2 = catalog.create_table(
        "dim2", Schema.of(("key", DataType.VARCHAR), ("label", DataType.VARCHAR))
    )
    keys = ["a", "b", "c"]
    people = ["ada", "bob", "cyd"]
    for _ in range(12):
        fact.insert([rng.choice(keys), rng.choice(keys)])
    for key, person in zip(keys, people):
        dim1.insert([key, person])
        dim2.insert([key, f"label-{key}"])

    store = DocumentStore(["author", "year"], short_fields=["author", "year"])
    store.add_record("d1", author="ada", year="may 1993")
    store.add_record("d2", author="bob", year="june 1994")
    server = BooleanTextServer(store)

    query = MultiJoinQuery(
        relations=("fact", "dim1", "dim2"),
        text_predicates=(TextJoinPredicate("dim1.who", "author"),),
        join_predicates=(
            RelationalJoinPredicate(
                Comparison("=", ColumnRef("fact.d1"), ColumnRef("dim1.key")),
                ("fact", "dim1"),
            ),
            RelationalJoinPredicate(
                Comparison("=", ColumnRef("fact.d2"), ColumnRef("dim2.key")),
                ("fact", "dim2"),
            ),
        ),
        text_source="doc",
    )
    return catalog, server, query


class TestStarQuery:
    def test_bushy_and_extended_agree(self, star_world):
        catalog, server, query = star_world
        results = []
        for space in ("extended", "bushy"):
            context = JoinContext(catalog, TextClient(server))
            estimator = PlanEstimator(query, context)
            optimized = optimize_multijoin(query, estimator, space=space)
            execution = execute_plan(
                optimized.plan, query, JoinContext(catalog, TextClient(server))
            )
            results.append(execution.result_keys())
        assert results[0] == results[1]

    def test_bushy_cost_never_worse(self, star_world):
        catalog, server, query = star_world
        costs = {}
        for space in ("extended", "bushy"):
            context = JoinContext(catalog, TextClient(server))
            estimator = PlanEstimator(query, context)
            costs[space] = optimize_multijoin(
                query, estimator, space=space
            ).estimated_cost
        assert costs["bushy"] <= costs["extended"] + 1e-9


class TestMultiJoinLongForm:
    def test_long_form_pairs_have_all_fields(self, star_world):
        catalog, server, query = star_world
        from dataclasses import replace

        long_query = replace(query, long_form=True)
        context = JoinContext(catalog, TextClient(server))
        estimator = PlanEstimator(long_query, context)
        optimized = optimize_multijoin(long_query, estimator)
        run_context = JoinContext(catalog, TextClient(server))
        execution = execute_plan(optimized.plan, long_query, run_context)
        assert execution.rows
        for row in execution.rows:
            assert row["doc.year"] is not None  # full fields materialized
