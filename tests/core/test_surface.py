"""Tests for the SQL-like surface syntax (the paper's queries verbatim)."""

import pytest

from repro.core.optimizer.multiquery import MultiJoinQuery
from repro.core.query import ResultShape, TextJoinQuery
from repro.core.surface import parse_query
from repro.errors import PlanError
from repro.relational.expressions import And, Comparison

Q1 = """
select * from student, mercury
where student.area = 'AI' and student.year > 3
and 'belief update' in mercury.title
and student.name in mercury.author
"""

Q2 = """
select docid from student, mercury
where student.advisor = 'Garcia'
and 'text' in mercury.title
and student.name in mercury.author
"""

Q3 = """
select project.member, project.name, mercury.docid
from project, mercury
where project.sponsor = 'NSF'
and project.name in mercury.title
and project.member in mercury.author
"""

Q4 = """
select * from student, mercury
where student.area = 'distributed systems'
and student.advisor in mercury.author
and student.name in mercury.author
"""

Q5 = """
select student.name, mercury.docid
from student, faculty, mercury
where student.name in mercury.author
and faculty.name in mercury.author
and faculty.dept != student.dept
and 'may 1993' in mercury.year
"""


class TestPaperQueries:
    def test_q1(self):
        query = parse_query(Q1)
        assert isinstance(query, TextJoinQuery)
        assert query.relation == "student"
        assert query.shape is ResultShape.PAIRS
        assert query.long_form is True
        assert [p.field for p in query.join_predicates] == ["author"]
        assert query.text_selections[0].term == "belief update"
        assert isinstance(query.relation_predicate, And)

    def test_q2_docids_shape(self):
        query = parse_query(Q2)
        assert query.shape is ResultShape.DOCIDS
        assert query.long_form is False
        assert isinstance(query.relation_predicate, Comparison)

    def test_q3_two_predicates(self):
        query = parse_query(Q3)
        assert isinstance(query, TextJoinQuery)
        assert query.join_columns == ("project.name", "project.member")
        assert query.text_selections == ()
        assert query.shape is ResultShape.PAIRS
        assert query.long_form is False

    def test_q4(self):
        query = parse_query(Q4)
        assert query.join_columns == ("student.advisor", "student.name")

    def test_q5_multijoin(self):
        query = parse_query(Q5)
        assert isinstance(query, MultiJoinQuery)
        assert query.relations == ("student", "faculty")
        assert len(query.text_predicates) == 2
        assert len(query.join_predicates) == 1
        assert query.text_selections[0].field == "year"
        assert query.long_form is False


class TestShapes:
    def test_relation_columns_only_is_tuples(self):
        query = parse_query(
            "select student.name from student, mercury "
            "where student.name in mercury.author"
        )
        assert query.shape is ResultShape.TUPLES

    def test_mixed_columns_is_pairs_short(self):
        query = parse_query(
            "select student.name, mercury.title from student, mercury "
            "where student.name in mercury.author"
        )
        assert query.shape is ResultShape.PAIRS
        assert query.long_form is False

    def test_same_relation_comparison_is_local(self):
        query = parse_query(
            "select * from student, mercury "
            "where student.year > student.entry "
            "and student.name in mercury.author"
        )
        assert isinstance(query, TextJoinQuery)
        assert query.relation_predicate is not None


class TestErrors:
    def test_text_source_must_be_in_from(self):
        with pytest.raises(PlanError, match="mercury"):
            parse_query("select * from student where student.a = 1")

    def test_needs_stored_relation(self):
        with pytest.raises(PlanError):
            parse_query("select * from mercury where 'x' in mercury.title")

    def test_needs_join_predicate_single_relation(self):
        with pytest.raises(PlanError):
            parse_query(
                "select * from student, mercury where 'x' in mercury.title"
            )

    def test_in_field_must_be_text_source(self):
        with pytest.raises(PlanError):
            parse_query(
                "select * from student, mercury "
                "where student.name in student.author"
            )

    def test_unknown_relation_in_predicate(self):
        with pytest.raises(PlanError):
            parse_query(
                "select * from student, mercury "
                "where ghost.name in mercury.author"
            )

    def test_unqualified_comparison_rejected(self):
        with pytest.raises(PlanError):
            parse_query(
                "select * from student, mercury "
                "where area = 'AI' and student.name in mercury.author"
            )

    def test_garbage_rejected(self):
        with pytest.raises(PlanError):
            parse_query("select ~~ from !!")


class TestExecutionRoundTrip:
    def test_parsed_q1_executes(self, tiny_context):
        from repro.core.joinmethods import TupleSubstitution

        sql = (
            "select * from student, mercury "
            "where student.area = 'AI' "
            "and 'belief update' in mercury.title "
            "and student.name in mercury.author"
        )
        query = parse_query(sql)
        execution = TupleSubstitution().execute(query, tiny_context)
        names = {pair.row["student.name"] for pair in execution.pairs}
        assert names == {"radhika", "smith"}
