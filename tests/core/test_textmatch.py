"""Unit + property tests for TextMatch (local text-predicate semantics).

The key invariant: ``value_matches_field`` must agree exactly with the
text server's evaluation of the corresponding instantiated search term
(``data_term``) — otherwise locally-evaluated predicates (RTP, deferred
text matches) would diverge from server-evaluated ones.
"""

import pytest
from hypothesis import given, strategies as st

from repro.core.textmatch import TextMatch, value_matches_field
from repro.errors import SearchSyntaxError, TypeMismatchError
from repro.relational.expressions import ColumnRef
from repro.relational.row import Row
from repro.relational.schema import Schema
from repro.relational.types import DataType
from repro.textsys.documents import Document
from repro.textsys.engine import matches_document
from repro.textsys.query import data_term

SCHEMA = Schema.of(
    ("s.value", DataType.VARCHAR),
    ("d.field", DataType.VARCHAR),
)


def row(value, field_text):
    return Row(SCHEMA, [value, field_text])


EXPR = TextMatch(ColumnRef("s.value"), ColumnRef("d.field"))


class TestValueMatchesField:
    def test_single_word(self):
        assert value_matches_field("belief", "a belief operator")
        assert not value_matches_field("belief", "beliefs operator")

    def test_phrase_adjacency(self):
        assert value_matches_field("belief update", "the belief update op")
        assert not value_matches_field("belief update", "belief about update")

    def test_case_and_punctuation_insensitive(self):
        assert value_matches_field("Belief-Update", "belief, update!")

    def test_empty_value_never_matches(self):
        assert not value_matches_field("???", "anything")
        assert not value_matches_field("", "anything")


class TestExpression:
    def test_true_false(self):
        assert EXPR.evaluate(row("belief", "belief update")) is True
        assert EXPR.evaluate(row("zzz", "belief update")) is False

    def test_null_unknown(self):
        assert EXPR.evaluate(row(None, "x")) is None
        assert EXPR.evaluate(row("x", None)) is None

    def test_non_string_rejected(self):
        schema = Schema.of(("s.value", DataType.INTEGER), ("d.field", DataType.VARCHAR))
        with pytest.raises(TypeMismatchError):
            TextMatch(ColumnRef("s.value"), ColumnRef("d.field")).evaluate(
                Row(schema, [1, "x"])
            )

    def test_referenced_columns(self):
        assert EXPR.referenced_columns() == {"s.value", "d.field"}


words = st.sampled_from(["alpha", "beta", "gamma", "delta"])
texts = st.lists(words, max_size=8).map(" ".join)
values = st.lists(words, min_size=1, max_size=3).map(" ".join)


@given(value=values, field_text=texts)
def test_agrees_with_server_side_term_semantics(value, field_text):
    """value_matches_field(value, t) == matches_document(data_term(value))."""
    document = Document("d", {"f": field_text})
    try:
        node = data_term("f", value)
    except SearchSyntaxError:
        assert not value_matches_field(value, field_text)
        return
    assert value_matches_field(value, field_text) == matches_document(document, node)
