"""Where the cost model is *exact*, measured counts must equal predictions.

With exact statistics (the calibrated setting), some predicted
quantities are not estimates at all:

- TS sends exactly ``N_K`` searches;
- SJ sends exactly ``ceil(N_K k / (M - sel_terms))`` searches;
- B+TS sends exactly ``ceil(N_K / B)`` invocations;
- probe-first P+TS sends exactly ``N_J`` probes plus one full search per
  surviving group;
- postings processed by TS equal ``N_K * (sum f_i + I_sel)``.

These tests pin the accounting identity between the formulas and the
metered executions on the canonical scenario.
"""

import math

import pytest

from repro.core.costmodel import cost_sj, cost_ts
from repro.core.inputs import build_cost_inputs
from repro.core.joinmethods import (
    ProbeTupleSubstitution,
    SemiJoin,
    TupleSubstitution,
)
from repro.core.query import ResultShape


class TestTsExactness:
    def test_invocation_count(self, scenario):
        for query_id in ("q1", "q2", "q3", "q4"):
            query = scenario.query(query_id)
            inputs = build_cost_inputs(query, scenario.context())
            predicted = cost_ts(inputs, query).searches
            execution = TupleSubstitution().execute(query, scenario.context())
            assert execution.cost.searches == predicted, query_id

    def test_postings_processed(self, scenario):
        """Postings are mean-based (f_i averages over distinct values), so
        they are near-exact rather than exact when tuples are non-uniform
        over values (Q3's 10-member project vs the 9-member ones)."""
        query = scenario.q3()
        inputs = build_cost_inputs(query, scenario.context())
        execution = TupleSubstitution().execute(query, scenario.context())
        predicted = inputs.distinct(query.join_columns) * (
            inputs.postings_per_search(query.join_columns)
        )
        assert execution.cost.postings_processed == pytest.approx(
            predicted, rel=0.05
        )


class TestSjExactness:
    def test_batch_count(self, scenario):
        query = scenario.q2()  # DOCIDS shape
        inputs = build_cost_inputs(query, scenario.context())
        predicted = cost_sj(inputs, query).searches
        execution = SemiJoin().execute(query, scenario.context())
        assert execution.cost.searches == predicted

    def test_batch_formula(self, scenario):
        query = scenario.q1(long_form=False).with_shape(ResultShape.DOCIDS)
        inputs = build_cost_inputs(query, scenario.context())
        n_k = inputs.distinct(query.join_columns)
        capacity = inputs.term_limit - inputs.selection.term_count
        expected = math.ceil(n_k * len(query.join_columns) / capacity)
        execution = SemiJoin().execute(query, scenario.context())
        assert execution.cost.searches == expected


class TestProbeFirstExactness:
    def test_probe_plus_survivor_invocations(self, scenario):
        """Probe-first P+TS sends N_J probes + one full search per distinct
        K-group whose probe succeeded."""
        query = scenario.q3()
        column = "project.name"
        inputs = build_cost_inputs(query, scenario.context())
        n_j = int(inputs.distinct([column]))

        # Count surviving groups directly from the data.
        from repro.core.joinmethods.base import (
            group_by_columns,
            joining_rows,
        )
        from repro.textsys.query import data_term

        context = scenario.context()
        rows = joining_rows(context, query)
        survivors = 0
        succeeded_names = {
            name
            for name in {row[column] for row in rows}
            if len(scenario.server.search(data_term("title", str(name)))) > 0
        }
        for key, group in group_by_columns(rows, query.join_columns).items():
            if group[0][column] in succeeded_names:
                survivors += 1

        execution = ProbeTupleSubstitution((column,)).execute(
            query, scenario.context()
        )
        assert execution.cost.searches == n_j + survivors
