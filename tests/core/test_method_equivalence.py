"""Property tests for DESIGN.md invariants 1–3.

1. **Method equivalence** — on randomly generated corpora and relations,
   every join method returns the same result set for the same query.
2. **Probe soundness** — a probe reducer never prunes a tuple that would
   have joined.
3. **Semi-join batching** — the OR-batched docid set equals the union of
   the per-tuple searches, under arbitrary (even tiny) term limits.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.joinmethods import (
    JoinContext,
    ProbeRtp,
    ProbeSemiJoin,
    ProbeTupleSubstitution,
    RelationalTextProcessing,
    SemiJoin,
    SemiJoinRtp,
    SingleColumnSemiJoinRtp,
    TupleSubstitution,
)
from repro.core.query import (
    ResultShape,
    TextJoinPredicate,
    TextJoinQuery,
    TextSelection,
)
from repro.gateway.client import TextClient
from repro.relational.catalog import Catalog
from repro.relational.schema import Schema
from repro.relational.types import DataType
from repro.textsys.documents import Document, DocumentStore
from repro.textsys.server import BooleanTextServer

WORDS = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"]


def random_world(seed: int):
    """A random document collection + a random two-column relation."""
    rng = random.Random(seed)
    store = DocumentStore(
        ["title", "author"], short_fields=["title", "author"]
    )
    for i in range(rng.randint(1, 12)):
        title = " ".join(rng.choices(WORDS, k=rng.randint(0, 4)))
        author = " ".join(rng.choices(WORDS, k=rng.randint(0, 3)))
        store.add(Document(f"d{i}", {"title": title, "author": author}))
    server = BooleanTextServer(store, term_limit=rng.choice([3, 5, 70]))

    catalog = Catalog()
    table = catalog.create_table(
        "r",
        Schema.of(("a", DataType.VARCHAR), ("b", DataType.VARCHAR)),
    )
    for _ in range(rng.randint(0, 10)):
        a = rng.choice(WORDS + [None])
        b = rng.choice(WORDS + [None])
        table.insert([a, b])

    selections = ()
    if rng.random() < 0.5:
        selections = (TextSelection(rng.choice(WORDS), "title"),)
    query = TextJoinQuery(
        relation="r",
        join_predicates=(
            TextJoinPredicate("r.a", "author"),
            TextJoinPredicate("r.b", "title"),
        ),
        text_selections=selections,
    )
    return catalog, server, query


def fresh_context(catalog, server):
    return JoinContext(catalog, TextClient(server))


ALL_PAIR_METHODS = [
    TupleSubstitution(),
    TupleSubstitution(distinct_only=False),
    SemiJoinRtp(),
    SingleColumnSemiJoinRtp("r.a"),
    SingleColumnSemiJoinRtp("r.b"),
    ProbeTupleSubstitution(("r.a",)),
    ProbeTupleSubstitution(("r.b",), probe_first=False),
    ProbeRtp(("r.a",)),
    ProbeRtp(("r.b",)),
]


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_all_pair_methods_agree(seed):
    """Invariant 1: every PAIRS-shaped method returns the same results."""
    catalog, server, query = random_world(seed)
    reference = None
    for method in ALL_PAIR_METHODS:
        context = fresh_context(catalog, server)
        keys = method.execute(query, context).result_keys()
        if reference is None:
            reference = keys
        else:
            assert keys == reference, (method.name, seed)
    if query.text_selections:
        context = fresh_context(catalog, server)
        keys = RelationalTextProcessing().execute(query, context).result_keys()
        assert keys == reference


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_docid_shapes_agree(seed):
    """SJ's batched docids equal the docids of TS's join results."""
    catalog, server, query = random_world(seed)
    docid_query = query.with_shape(ResultShape.DOCIDS)
    sj_keys = (
        SemiJoin()
        .execute(docid_query, fresh_context(catalog, server))
        .result_keys()
    )
    ts_keys = (
        TupleSubstitution()
        .execute(docid_query, fresh_context(catalog, server))
        .result_keys()
    )
    assert sj_keys == ts_keys, seed


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_tuple_shapes_agree_and_probe_is_sound(seed):
    """Invariant 2: the exact probe semi-join equals TS's tuple set, and
    any partial probe reducer yields a superset (never prunes a joiner)."""
    catalog, server, query = random_world(seed)
    tuple_query = query.with_shape(ResultShape.TUPLES)
    exact = (
        ProbeSemiJoin()
        .execute(tuple_query, fresh_context(catalog, server))
        .result_keys()
    )
    ts = (
        TupleSubstitution()
        .execute(tuple_query, fresh_context(catalog, server))
        .result_keys()
    )
    assert exact == ts, seed
    for columns in (("r.a",), ("r.b",)):
        reduced = (
            ProbeSemiJoin(columns)
            .execute(tuple_query, fresh_context(catalog, server))
            .result_keys()
        )
        assert ts <= reduced, (columns, seed)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 100_000), term_limit=st.integers(3, 10))
def test_semijoin_batching_invariant_under_any_term_limit(seed, term_limit):
    """Invariant 3: batching across searches never changes the docid set."""
    catalog, server, query = random_world(seed)
    tight_server = BooleanTextServer(server.store, term_limit=term_limit)
    docid_query = query.with_shape(ResultShape.DOCIDS)
    batched = (
        SemiJoin()
        .execute(docid_query, fresh_context(catalog, tight_server))
        .result_keys()
    )
    loose_server = BooleanTextServer(server.store, term_limit=70)
    reference = (
        SemiJoin()
        .execute(docid_query, fresh_context(catalog, loose_server))
        .result_keys()
    )
    assert batched == reference, seed
