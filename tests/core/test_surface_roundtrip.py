"""Property tests: parse_query(render_query(q)) == q for random queries."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.optimizer.multiquery import MultiJoinQuery, RelationalJoinPredicate
from repro.core.query import (
    ResultShape,
    TextJoinPredicate,
    TextJoinQuery,
    TextSelection,
)
from repro.core.surface import parse_query, render_query
from repro.relational.expressions import ColumnRef, Comparison, Literal, conjoin

RELATIONS = ["student", "project", "faculty"]
COLUMNS = ["name", "advisor", "member"]
FIELDS = ["title", "author", "year"]
OPERATORS = ["=", "!=", "<", "<=", ">", ">="]
TERMS = ["belief update", "text", "may 1993"]

relation_names = st.sampled_from(RELATIONS)
operators = st.sampled_from(OPERATORS)
literals = st.one_of(
    st.integers(-100, 100),
    st.sampled_from(["AI", "NSF", "distributed systems"]),
)


@st.composite
def single_join_queries(draw):
    relation = draw(relation_names)
    column_count = draw(st.integers(1, 3))
    columns = draw(
        st.lists(
            st.sampled_from(COLUMNS), min_size=column_count,
            max_size=column_count, unique=True,
        )
    )
    predicates = tuple(
        TextJoinPredicate(f"{relation}.{column}", draw(st.sampled_from(FIELDS)))
        for column in columns
    )
    selections = tuple(
        TextSelection(term, draw(st.sampled_from(FIELDS)))
        for term in draw(st.lists(st.sampled_from(TERMS), max_size=2, unique=True))
    )
    local = None
    if draw(st.booleans()):
        local = conjoin(
            [
                Comparison(
                    draw(operators),
                    ColumnRef(f"{relation}.{draw(st.sampled_from(COLUMNS))}"),
                    Literal(draw(literals)),
                )
                for _ in range(draw(st.integers(1, 2)))
            ]
        )
    shape = draw(st.sampled_from(list(ResultShape)))
    long_form = shape is ResultShape.PAIRS and draw(st.booleans())
    return TextJoinQuery(
        relation=relation,
        join_predicates=predicates,
        text_selections=selections,
        relation_predicate=local,
        shape=shape,
        long_form=long_form,
    )


@settings(max_examples=80, deadline=None)
@given(query=single_join_queries())
def test_single_join_round_trip(query):
    rendered = render_query(query)
    assert parse_query(rendered) == query


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), long_form=st.booleans())
def test_multi_join_round_trip(seed, long_form):
    import random

    rng = random.Random(seed)
    relations = tuple(rng.sample(RELATIONS, rng.randint(2, 3)))
    text_predicates = tuple(
        TextJoinPredicate(f"{relation}.{rng.choice(COLUMNS)}", rng.choice(FIELDS))
        for relation in rng.sample(relations, rng.randint(1, len(relations)))
    )
    join_predicates = tuple(
        RelationalJoinPredicate(
            Comparison(
                rng.choice(OPERATORS),
                ColumnRef(f"{relations[i]}.dept"),
                ColumnRef(f"{relations[i + 1]}.dept"),
            ),
            (relations[i], relations[i + 1]),
        )
        for i in range(len(relations) - 1)
    )
    query = MultiJoinQuery(
        relations=relations,
        text_predicates=text_predicates,
        text_selections=(TextSelection("may 1993", "year"),),
        join_predicates=join_predicates,
        long_form=long_form,
    )
    rendered = render_query(query, text_source=query.text_source)
    assert parse_query(rendered, text_source=query.text_source) == query


def test_render_rejects_foreign_expressions():
    from repro.errors import PlanError
    from repro.relational.expressions import Like

    query = TextJoinQuery(
        relation="student",
        join_predicates=(TextJoinPredicate("student.name", "author"),),
        relation_predicate=Like(ColumnRef("student.name"), "a%"),
    )
    with pytest.raises(PlanError, match="render"):
        render_query(query)
