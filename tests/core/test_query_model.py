"""Unit tests for the TextJoinQuery model."""

import pytest

from repro.core.query import (
    JoinedPair,
    ResultShape,
    TextJoinPredicate,
    TextJoinQuery,
    TextSelection,
)
from repro.errors import PlanError
from repro.relational.row import Row
from repro.relational.schema import Schema
from repro.relational.types import DataType
from repro.textsys.documents import Document


def query(**overrides):
    base = dict(
        relation="student",
        join_predicates=(
            TextJoinPredicate("student.name", "author"),
            TextJoinPredicate("student.advisor", "author"),
        ),
    )
    base.update(overrides)
    return TextJoinQuery(**base)


class TestValidation:
    def test_needs_relation(self):
        with pytest.raises(PlanError):
            query(relation="")

    def test_needs_join_predicate(self):
        with pytest.raises(PlanError):
            query(join_predicates=())

    def test_duplicate_join_columns_rejected(self):
        with pytest.raises(PlanError):
            query(
                join_predicates=(
                    TextJoinPredicate("student.name", "author"),
                    TextJoinPredicate("student.name", "title"),
                )
            )

    def test_long_form_only_for_pairs(self):
        with pytest.raises(PlanError):
            query(shape=ResultShape.DOCIDS, long_form=True)

    def test_empty_selection_parts_rejected(self):
        with pytest.raises(PlanError):
            TextSelection("", "title")
        with pytest.raises(PlanError):
            TextSelection("x", "")

    def test_empty_predicate_parts_rejected(self):
        with pytest.raises(PlanError):
            TextJoinPredicate("", "author")
        with pytest.raises(PlanError):
            TextJoinPredicate("c", "")


class TestViews:
    def test_join_columns(self):
        assert query().join_columns == ("student.name", "student.advisor")

    def test_predicate_on(self):
        q = query()
        assert q.predicate_on("student.name").field == "author"
        with pytest.raises(PlanError):
            q.predicate_on("student.zzz")

    def test_predicates_on_preserves_order(self):
        q = query()
        preds = q.predicates_on(["student.advisor", "student.name"])
        assert [p.column for p in preds] == ["student.name", "student.advisor"]

    def test_predicates_on_unknown_raises(self):
        with pytest.raises(PlanError):
            query().predicates_on(["nope"])

    def test_with_shape_drops_long_form(self):
        q = query(long_form=True)
        assert q.with_shape(ResultShape.DOCIDS).long_form is False
        assert q.with_shape(ResultShape.PAIRS).long_form is True


class TestJoinedPair:
    def test_key(self):
        schema = Schema.of(("s.name", DataType.VARCHAR))
        pair = JoinedPair(Row(schema, ["kao"]), Document("d1", {"title": "t"}))
        assert pair.key() == (("kao",), "d1")
