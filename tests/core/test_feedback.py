"""Tests for the estimator feedback loop: q-errors, blending, the
re-optimizing guard, and the charge-identity contract (invariant 14)."""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.feedback_loop import (
    feedback_loop_report,
    stale_statistics_registry,
)
from repro.core.adaptive import (
    _inputs_with_observation,
    execute_adaptively,
)
from repro.core.executor import execute_plan
from repro.core.feedback import (
    EstimateRecord,
    FeedbackStore,
    QErrorReport,
    corpus_fingerprint,
    plan_qerror_report,
    qerror,
    query_key,
)
from repro.core.inputs import build_cost_inputs
from repro.core.joinmethods.base import JoinContext
from repro.core.optimizer.enumerate import optimize_multijoin
from repro.core.optimizer.estimator import PlanEstimator
from repro.core.optimizer.multiquery import MultiJoinQuery
from repro.core.optimizer.single_join import enumerate_method_choices
from repro.core.query import TextJoinPredicate, TextJoinQuery, TextSelection
from repro.errors import FeedbackError, OptimizationError, StatisticsError
from repro.gateway.cache import GatewayCache
from repro.gateway.client import TextClient
from repro.gateway.sampling import observed_predicate_statistics
from repro.gateway.statistics import (
    PredicateStatistics,
    TextStatisticsRegistry,
    blend_statistics,
)
from repro.relational.catalog import Catalog
from repro.relational.schema import Schema
from repro.relational.types import DataType
from repro.textsys.documents import DocumentStore
from repro.textsys.server import BooleanTextServer


def q4_query():
    return TextJoinQuery(
        relation="student",
        join_predicates=(
            TextJoinPredicate("student.advisor", "author"),
            TextJoinPredicate("student.name", "author"),
        ),
    )


# ----------------------------------------------------------------------
# q-error arithmetic and reports
# ----------------------------------------------------------------------
class TestQError:
    def test_symmetric(self):
        assert qerror(10, 100) == qerror(100, 10) == 10.0

    def test_exact_estimate_is_one(self):
        assert qerror(42.0, 42.0) == 1.0

    def test_zero_actual_uses_floor(self):
        # An estimated-empty result that came back non-empty must be
        # flagged, not crash on division by zero.
        assert qerror(0.0, 50.0) == 50.0
        assert qerror(50.0, 0.0) == 50.0
        assert qerror(0.0, 0.0) == 1.0

    def test_seconds_floor(self):
        record = EstimateRecord("m", "method", 0.0005, 0.1, unit="seconds")
        assert record.q == pytest.approx(100.0)

    def test_bad_floor_raises(self):
        with pytest.raises(FeedbackError):
            qerror(1.0, 1.0, floor=0.0)

    def test_report_statistics(self):
        report = QErrorReport()
        assert report.max_q == 1.0 and report.median_q == 1.0
        for estimated, actual in ((10, 10), (10, 20), (10, 80)):
            report.add(EstimateRecord("x", "node", estimated, actual))
        assert report.max_q == 8.0
        assert report.median_q == 2.0
        assert [round(r.q) for r in report.worst(2)] == [8, 2]
        assert len(report.for_kind("node")) == 3
        assert len(report.for_kind("method")) == 0
        assert "median q-error 2.00" in report.render()


# ----------------------------------------------------------------------
# blending and observed statistics
# ----------------------------------------------------------------------
class TestBlending:
    PRIOR = PredicateStatistics("c", "f", selectivity=0.5, fanout=2.0)

    def test_zero_sample_observation_keeps_prior(self):
        observed = PredicateStatistics(
            "c", "f", selectivity=0.9, fanout=9.0, sample_size=0
        )
        assert blend_statistics(self.PRIOR, observed, 16.0) == self.PRIOR

    def test_precision_weighted_mean(self):
        observed = PredicateStatistics(
            "c", "f", selectivity=1.0, fanout=6.0, sample_size=4
        )
        blended = blend_statistics(self.PRIOR, observed, 4.0)
        assert blended.selectivity == pytest.approx((4 * 0.5 + 4 * 1.0) / 8)
        assert blended.fanout == pytest.approx((4 * 2.0 + 4 * 6.0) / 8)
        assert blended.sample_size == 4

    def test_heavy_observation_dominates(self):
        observed = PredicateStatistics(
            "c", "f", selectivity=1.0, fanout=6.0, sample_size=1000
        )
        blended = blend_statistics(self.PRIOR, observed, 1.0)
        assert blended.fanout == pytest.approx(6.0, rel=0.01)

    def test_negative_prior_weight_raises(self):
        observed = PredicateStatistics("c", "f", 0.9, 1.0, sample_size=1)
        with pytest.raises(StatisticsError):
            blend_statistics(self.PRIOR, observed, -1.0)

    def test_observed_statistics_validate(self):
        stats = observed_predicate_statistics("c", "f", 4, 3, 10.0)
        assert stats.selectivity == 0.75
        assert stats.fanout == 2.5
        assert stats.sample_size == 4
        with pytest.raises(StatisticsError):
            observed_predicate_statistics("c", "f", 0, 0, 0.0)
        # Counter noise is clamped into the valid domain, never NaN.
        clamped = observed_predicate_statistics("c", "f", 2, 5, -3.0)
        assert clamped.selectivity == 1.0
        assert clamped.fanout == 0.0


# ----------------------------------------------------------------------
# fingerprints and canonical query keys
# ----------------------------------------------------------------------
class TestKeys:
    def test_fingerprint_changes_on_corpus_mutation(self, tiny_server):
        before = corpus_fingerprint(tiny_server)
        tiny_server.store.add_record("d99", title="fresh", author="someone")
        after = corpus_fingerprint(tiny_server)
        assert before != after

    def test_fingerprint_stable_across_server_instances(self, tiny_store):
        assert corpus_fingerprint(
            BooleanTextServer(tiny_store)
        ) == corpus_fingerprint(BooleanTextServer(tiny_store))

    def test_query_key_predicate_order_insensitive(self):
        forward = q4_query()
        backward = TextJoinQuery(
            relation="student",
            join_predicates=tuple(reversed(forward.join_predicates)),
        )
        assert query_key(forward) == query_key(backward)

    def test_query_key_includes_selections(self):
        with_selection = TextJoinQuery(
            relation="student",
            join_predicates=(TextJoinPredicate("student.name", "author"),),
            text_selections=(TextSelection("belief update", "title"),),
        )
        without = TextJoinQuery(
            relation="student",
            join_predicates=(TextJoinPredicate("student.name", "author"),),
        )
        assert query_key(with_selection) != query_key(without)


# ----------------------------------------------------------------------
# the re-optimizing guard (scenario-scale, seeded)
# ----------------------------------------------------------------------
class TestReoptimization:
    @pytest.fixture(scope="class")
    def loop(self):
        return feedback_loop_report()

    def test_run1_aborts_and_reoptimizes(self, loop):
        run1 = loop["run1"]
        assert run1["attempts"][0]["aborted"]
        assert run1["reoptimizations"] == 1
        assert run1["winner"] != run1["first_choice"]

    def test_run2_flips_to_cheaper_method(self, loop):
        run1, run2 = loop["run1"], loop["run2"]
        assert run2["winner"] != run1["winner"]
        assert run2["total_cost"] < run1["total_cost"]
        assert not any(a["aborted"] for a in run2["attempts"])
        assert loop["results_identical"]

    def test_abort_recorded_with_true_cause(self, loop):
        store = loop["store"]
        aborts = store.report().for_kind("abort")
        assert len(aborts) == 1
        record = aborts.records[0]
        assert record.label.startswith("guard:P(advisor)")
        assert record.unit == "documents"
        assert record.actual > record.estimated  # fetched blew past the cap
        from repro.workload import build_default_scenario

        fingerprint = corpus_fingerprint(build_default_scenario(seed=7).server)
        observation = store.observation(fingerprint, "student.advisor", "author")
        assert observation is not None
        assert observation.searches >= 1

    def test_wrong_probe_column_choice_flips(self, scenario):
        """A stale lie makes {name} the probe column; the guard's
        observation re-ranks the probe sets back to {advisor}."""
        query = scenario.q4()
        registry = TextStatisticsRegistry()
        registry.put(
            PredicateStatistics(
                "student.advisor", "author", selectivity=1.0, fanout=6.0
            )
        )
        # The lie: student names are ultra-selective, near-zero fanout.
        registry.put(
            PredicateStatistics(
                "student.name", "author", selectivity=0.05, fanout=0.05
            )
        )
        inputs = build_cost_inputs(query, scenario.context(), registry=registry)
        lied = {c.name for c in enumerate_method_choices(query, inputs)}
        assert "P(name)+TS" in lied
        assert "P(advisor)+TS" not in lied

        # What a guard abort on a name-probing method would observe:
        # nearly every probe matches, about one document per probe.
        corrected = _inputs_with_observation(
            inputs,
            {
                "probe_columns": ("student.name",),
                "fields": {"student.name": "author"},
                "probes": 13,
                "successes": 12,
                "fetched": 15.0,
            },
        )
        fixed = {c.name for c in enumerate_method_choices(query, corrected)}
        assert "P(advisor)+TS" in fixed
        assert "P(name)+TS" not in fixed

    def test_wrong_sj_batching_flips(self, scenario):
        """Corrected fanout re-derives the semi-join's fetch expectation:
        SJ+RTP drops from runner-up to last once the advisor fanout is
        observed (the batched fetch volume was the misestimate)."""
        query = scenario.q4()
        inputs = build_cost_inputs(
            query, scenario.context(), registry=stale_statistics_registry()
        )
        stale_order = [c.name for c in enumerate_method_choices(query, inputs)]
        assert stale_order.index("SJ+RTP") == 1

        corrected = _inputs_with_observation(
            inputs,
            {
                "probe_columns": ("student.advisor",),
                "fields": {"student.advisor": "author"},
                "probes": 2,
                "successes": 2,
                "fetched": 12.0,
            },
        )
        fixed_order = [
            c.name for c in enumerate_method_choices(query, corrected)
        ]
        assert fixed_order.index("SJ+RTP") > fixed_order.index("TS")


# ----------------------------------------------------------------------
# invariant 14: feedback never perturbs the executing plan's charges
# ----------------------------------------------------------------------
class TestChargeIdentity:
    # The fixtures are read-only here (each example builds fresh clients
    # and its own store), so sharing them across examples is safe.
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        searches=st.integers(min_value=1, max_value=50),
        matched=st.integers(min_value=0, max_value=50),
        documents=st.floats(
            min_value=0.0, max_value=500.0, allow_nan=False
        ),
        prior_weight=st.floats(
            min_value=0.0, max_value=64.0, allow_nan=False
        ),
    )
    def test_recording_never_changes_charges(
        self, tiny_catalog, tiny_server, searches, matched, documents,
        prior_weight,
    ):
        """Whatever the store has observed, executing the plan it picked
        charges exactly what a feedback-free execution of the same plan
        charges — bit-identical, not approximately."""
        query = q4_query()
        store = FeedbackStore(prior_weight=prior_weight)
        fingerprint = corpus_fingerprint(tiny_server)
        store.observe_predicate(
            fingerprint, "student.advisor", "author",
            searches=searches, matched=matched, documents=documents,
        )

        context = JoinContext(tiny_catalog, TextClient(tiny_server))
        inputs = build_cost_inputs(query, context, feedback=store)

        recording = JoinContext(tiny_catalog, TextClient(tiny_server))
        with_feedback = execute_adaptively(
            query, recording, inputs, feedback=store
        )
        silent = JoinContext(tiny_catalog, TextClient(tiny_server))
        without_feedback = execute_adaptively(
            query, silent, inputs, feedback=None
        )

        assert with_feedback.total_cost == without_feedback.total_cost
        assert [a.method for a in with_feedback.attempts] == [
            a.method for a in without_feedback.attempts
        ]
        assert [a.spent_cost for a in with_feedback.attempts] == [
            a.spent_cost for a in without_feedback.attempts
        ]
        assert (
            with_feedback.execution.result_keys()
            == without_feedback.execution.result_keys()
        )

    def test_blend_reads_do_not_touch_the_ledger(self, tiny_context):
        query = q4_query()
        store = FeedbackStore()
        fingerprint = corpus_fingerprint(tiny_context.client.server)
        store.observe_predicate(
            fingerprint, "student.advisor", "author", 5, 5, 10.0
        )
        inputs = build_cost_inputs(query, tiny_context)
        before = tiny_context.client.ledger.snapshot()
        for stats in inputs.predicate_stats.values():
            store.blend(stats, fingerprint)
        store.report()
        assert tiny_context.client.ledger.diff(before).total == 0.0


# ----------------------------------------------------------------------
# adaptive cost accounting (the satellite-1 regression)
# ----------------------------------------------------------------------
class TestAdaptiveAccounting:
    def _lying_registry(self):
        registry = TextStatisticsRegistry()
        registry.put(
            PredicateStatistics("student.advisor", "author", 0.01, 0.001)
        )
        registry.put(PredicateStatistics("student.name", "author", 0.9, 2.0e5))
        return registry

    @pytest.mark.parametrize("with_cache", [False, True])
    def test_abort_charges_exactly_once(self, scenario, with_cache):
        """The aborted attempt's spend is neither dropped from
        ``total_cost`` nor double-counted when a warm cache answers the
        fallback's re-fetches.  Pinned identity: the ledger's own diff
        IS the total, and the per-attempt spends sum to it exactly."""
        query = scenario.q4()
        cache = GatewayCache() if with_cache else None
        context = scenario.context(cache=cache)
        inputs = build_cost_inputs(
            query, context, registry=self._lying_registry()
        )
        ledger = context.client.ledger
        before = ledger.snapshot()
        adaptive = execute_adaptively(
            query, context, inputs, safety_factor=0.001, reoptimize=False
        )
        assert adaptive.fell_back
        assert adaptive.attempts[0].aborted
        assert adaptive.attempts[0].spent_cost > 0.0
        assert adaptive.total_cost == ledger.diff(before).total
        assert adaptive.total_cost == pytest.approx(
            sum(a.spent_cost for a in adaptive.attempts), abs=1e-12
        )
        # The winner's own cost is part of the total, not the whole of it.
        assert adaptive.total_cost > adaptive.execution.cost.total

    def test_warm_cache_saves_without_dropping_charges(self, scenario):
        """With a cache, the fallback's re-fetches after the abort are
        answered locally: the total stays the exact ledger diff (nothing
        double-counted) and lands strictly below the cold-cache total
        (the savings are real, not dropped charges)."""
        query = scenario.q4()
        cold_context = scenario.context()
        cold = execute_adaptively(
            query,
            cold_context,
            build_cost_inputs(
                query, cold_context, registry=self._lying_registry()
            ),
            safety_factor=0.001,
            reoptimize=False,
        )
        cache = GatewayCache()
        warm_context = scenario.context(cache=cache)
        ledger = warm_context.client.ledger
        before = ledger.snapshot()
        warm = execute_adaptively(
            query,
            warm_context,
            build_cost_inputs(
                query, warm_context, registry=self._lying_registry()
            ),
            safety_factor=0.001,
            reoptimize=False,
        )
        assert [a.method for a in warm.attempts] == [
            a.method for a in cold.attempts
        ]
        assert cache.hits > 0
        assert warm.total_cost < cold.total_cost
        assert warm.total_cost == ledger.diff(before).total

    def test_all_aborts_raise_with_spent_charges_attached(
        self, scenario, monkeypatch
    ):
        """When every method aborts, the OptimizationError must carry
        the attempt trail and the sunk ledger spend instead of dropping
        them (they are on the ledger regardless)."""
        import repro.core.adaptive as adaptive_module

        query = scenario.q4()
        context = scenario.context()
        inputs = build_cost_inputs(
            query, context, registry=self._lying_registry()
        )
        real_enumerate = adaptive_module.enumerate_method_choices
        monkeypatch.setattr(
            adaptive_module,
            "enumerate_method_choices",
            lambda q, i, **kw: [
                c for c in real_enumerate(q, i, **kw)
                if c.name.startswith("P(") and c.name.endswith("+RTP")
            ],
        )
        ledger = context.client.ledger
        before = ledger.snapshot()
        with pytest.raises(OptimizationError) as caught:
            execute_adaptively(
                query, context, inputs,
                safety_factor=0.001, reoptimize=False,
            )
        error = caught.value
        assert error.attempts and all(a.aborted for a in error.attempts)
        assert error.spent_cost == ledger.diff(before).total
        assert error.spent_cost > 0.0


# ----------------------------------------------------------------------
# degenerate estimator inputs (the satellite-2 edges)
# ----------------------------------------------------------------------
class TestDegenerateInputs:
    def _catalog(self, rows):
        catalog = Catalog()
        student = catalog.create_table(
            "student",
            Schema.of(
                ("name", DataType.VARCHAR),
                ("advisor", DataType.VARCHAR),
            ),
        )
        student.insert_many(rows)
        return catalog

    def test_empty_relation_executes_cleanly(self, tiny_server):
        context = JoinContext(self._catalog([]), TextClient(tiny_server))
        query = q4_query()
        inputs = build_cost_inputs(query, context)
        assert inputs.tuple_count == 0
        for choice in enumerate_method_choices(query, inputs):
            assert math.isfinite(choice.estimate.total)
            assert choice.estimate.total >= 0.0
        adaptive = execute_adaptively(query, context, inputs)
        assert adaptive.execution.result_keys() == set()

    def test_all_null_join_column_is_zero_not_nan(self, tiny_server):
        context = JoinContext(
            self._catalog([["radhika", None], ["gravano", None]]),
            TextClient(tiny_server),
        )
        query = q4_query()
        inputs = build_cost_inputs(query, context)
        advisor = inputs.predicate_stats["student.advisor"]
        assert (advisor.selectivity, advisor.fanout) == (0.0, 0.0)
        for choice in enumerate_method_choices(query, inputs):
            assert math.isfinite(choice.estimate.total)
        adaptive = execute_adaptively(query, context, inputs)
        assert adaptive.execution.result_keys() == set()

    def test_zero_distinct_probe_column_raises_typed_error(self, tiny_server):
        """A probe column with no recorded distinct count must surface a
        typed OptimizationError from the guard's fetch prediction, not a
        ZeroDivisionError or a NaN cap."""
        from repro.core.adaptive import _predicted_fetch
        from repro.core.joinmethods import ProbeRtp

        context = JoinContext(
            self._catalog([["radhika", "garcia"]]), TextClient(tiny_server)
        )
        query = q4_query()
        inputs = build_cost_inputs(query, context)
        inputs.distinct_counts = {}  # simulate a catalog with no counts
        with pytest.raises(OptimizationError):
            _predicted_fetch(ProbeRtp(("student.advisor",)), inputs)

    def test_empty_corpus_estimation_raises_typed_error(self):
        empty_server = BooleanTextServer(
            DocumentStore(["title", "author"], short_fields=["title", "author"])
        )
        context = JoinContext(
            self._catalog([["radhika", "garcia"]]), TextClient(empty_server)
        )
        query = MultiJoinQuery(
            relations=("student",),
            text_predicates=(TextJoinPredicate("student.name", "author"),),
            text_source="m",
        )
        estimator = PlanEstimator(query, context)
        with pytest.raises(OptimizationError):
            optimize_multijoin(query, estimator, space="extended")


# ----------------------------------------------------------------------
# plan-node actuals and the per-node q-error report
# ----------------------------------------------------------------------
class TestPlanNodeActuals:
    def test_node_actuals_cover_the_plan(self, tiny_catalog, tiny_server):
        query = MultiJoinQuery(
            relations=("student",),
            text_predicates=(TextJoinPredicate("student.name", "author"),),
            text_source="m",
        )
        context = JoinContext(tiny_catalog, TextClient(tiny_server))
        estimator = PlanEstimator(query, context)
        optimized = optimize_multijoin(query, estimator, space="extended")
        run_context = JoinContext(tiny_catalog, TextClient(tiny_server))
        execution = execute_plan(optimized.plan, query, run_context)

        assert execution.node_actuals
        root = execution.node_actuals[-1]
        assert root.actual_rows == len(execution.rows)
        # The root's subtree spend is the whole run's ledger total.
        assert root.actual_cost == pytest.approx(execution.cost.total)

        report = plan_qerror_report(execution)
        assert len(report) >= 2  # rows + seconds per annotated node
        assert all(record.q >= 1.0 for record in report.records)

    def test_capture_is_charge_free(self, tiny_catalog, tiny_server):
        """Recording node actuals must not add foreign calls or charges
        compared to the estimator-only path (invariant 14 again)."""
        query = MultiJoinQuery(
            relations=("student",),
            text_predicates=(TextJoinPredicate("student.name", "author"),),
            text_source="m",
        )
        context = JoinContext(tiny_catalog, TextClient(tiny_server))
        estimator = PlanEstimator(query, context)
        optimized = optimize_multijoin(query, estimator, space="extended")

        first = JoinContext(tiny_catalog, TextClient(tiny_server))
        second = JoinContext(tiny_catalog, TextClient(tiny_server))
        one = execute_plan(optimized.plan, query, first)
        two = execute_plan(optimized.plan, query, second)
        assert one.cost.total == two.cost.total
        report = plan_qerror_report(one)
        assert one.cost.total == two.cost.total  # reporting changed nothing
        assert len(report.records) == len(plan_qerror_report(two).records)


# ----------------------------------------------------------------------
# EXPLAIN surfaces what the optimizer learned
# ----------------------------------------------------------------------
class TestExplainFeedback:
    def test_explain_shows_observations_and_qerrors(self, scenario):
        from repro.core.explain import explain_query

        loop = feedback_loop_report()
        store = loop["store"]
        fingerprint = corpus_fingerprint(scenario.server)
        query = scenario.q4()
        inputs = build_cost_inputs(
            query,
            scenario.context(),
            registry=stale_statistics_registry(),
            feedback=store,
        )
        text = explain_query(
            query, inputs, feedback=store, fingerprint=fingerprint
        )
        assert "Runtime feedback" in text
        assert "student.advisor" in text
        assert "guard:P(advisor)+RTP" in text  # the abort's true cause

    def test_explain_without_observations_says_so(self, tiny_context):
        from repro.core.explain import explain_query

        query = q4_query()
        inputs = build_cost_inputs(query, tiny_context)
        text = explain_query(
            query, inputs, feedback=FeedbackStore(), fingerprint="fp"
        )
        assert "no observations for this corpus yet" in text
