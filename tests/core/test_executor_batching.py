"""Batch-aware executor hot paths: probes and long-form upgrades.

Two executor paths now batch their foreign calls:

- ``_run_probe`` sends instantiated probe expressions through
  ``search_batch`` (in ``batch_limit``-sized chunks) whenever the server
  accepts multi-query invocations, and
- ``_doc_rows`` collects every document needing a long-form upgrade and
  issues ONE ``retrieve_many`` instead of one ``retrieve`` per document.

Both must be pure transport optimizations: the kept rows, the per-group
kept/dropped semantics, and the per-document ``c_l`` charges are
identical to the serial paths — only invocation counts (and wall clock,
on pooled transports) change.
"""

from repro.core.executor import execute_plan
from repro.core.joinmethods.base import JoinContext
from repro.core.optimizer.multiquery import MultiJoinQuery
from repro.core.optimizer.plan import ProbeNode, ScanNode, TextScanNode
from repro.core.query import TextJoinPredicate, TextSelection
from repro.gateway.client import TextClient
from repro.relational.catalog import Catalog
from repro.relational.schema import Schema
from repro.relational.types import DataType
from repro.textsys.batching import BatchingTextServer
from repro.textsys.documents import DocumentStore
from repro.textsys.server import BooleanTextServer


AUTHORS = [
    "garcia",
    "gravano",
    "chaudhuri",
    "nomatch",
    "ullman",
    "widom",
]


def make_store() -> DocumentStore:
    store = DocumentStore(
        ["title", "author"], short_fields=["title", "author"]
    )
    store.add_record("d1", title="join queries", author="garcia molina")
    store.add_record("d2", title="text sources", author="gravano")
    store.add_record("d3", title="cost models", author="chaudhuri")
    store.add_record("d4", title="query plans", author="ullman")
    store.add_record("d5", title="active rules", author="widom")
    return store


def probe_fixture(server):
    """An author table probed against ``server``; returns (rows, client)."""
    catalog = Catalog()
    author = catalog.create_table(
        "author", Schema.of(("name", DataType.VARCHAR))
    )
    author.insert_many([[name] for name in AUTHORS] + [[None], ["..."]])
    query = MultiJoinQuery(
        relations=("author",),
        text_predicates=(TextJoinPredicate("author.name", "author"),),
        text_source="m",
    )
    plan = ProbeNode(
        child=ScanNode("author"),
        probe_columns=("author.name",),
        probe_predicates=(TextJoinPredicate("author.name", "author"),),
    )
    context = JoinContext(catalog, TextClient(server))
    execution = execute_plan(plan, query, context)
    names = [row["author.name"] for row in execution.rows]
    return names, context.client


SURVIVORS = ["garcia", "gravano", "chaudhuri", "ullman", "widom"]


class TestProbeBatching:
    def test_serial_fallback_on_plain_server(self):
        """A server without search_batch keeps the one-probe-per-group
        path: six indexable groups, six invocations."""
        names, client = probe_fixture(BooleanTextServer(make_store()))
        assert names == SURVIVORS
        assert client.ledger.searches == len(AUTHORS)

    def test_batched_probes_keep_identical_rows(self):
        serial_names, serial_client = probe_fixture(
            BooleanTextServer(make_store())
        )
        batched_names, batched_client = probe_fixture(
            BatchingTextServer(BooleanTextServer(make_store()))
        )
        assert batched_names == serial_names
        # Same postings work travelled; only the invocation count drops.
        assert (
            batched_client.ledger.postings_processed
            == serial_client.ledger.postings_processed
        )
        assert batched_client.ledger.searches == 1
        assert batched_client.ledger.total < serial_client.ledger.total

    def test_probes_chunk_by_batch_limit(self):
        """batch_limit=4 splits six probes into ceil(6/4)=2 invocations."""
        server = BatchingTextServer(BooleanTextServer(make_store()), 4)
        names, client = probe_fixture(server)
        assert names == SURVIVORS
        assert client.ledger.searches == 2

    def test_null_and_unindexable_groups_still_cost_nothing(self):
        """The pre-probe pruning rules survive batching: NULL keys and
        unindexable values never reach the batch."""
        catalog = Catalog()
        author = catalog.create_table(
            "author", Schema.of(("name", DataType.VARCHAR))
        )
        author.insert_many([[None], ["..."], ["?!"]])
        query = MultiJoinQuery(
            relations=("author",),
            text_predicates=(TextJoinPredicate("author.name", "author"),),
            text_source="m",
        )
        plan = ProbeNode(
            child=ScanNode("author"),
            probe_columns=("author.name",),
            probe_predicates=(TextJoinPredicate("author.name", "author"),),
        )
        context = JoinContext(
            catalog, TextClient(BatchingTextServer(BooleanTextServer(make_store())))
        )
        execution = execute_plan(plan, query, context)
        assert execution.rows == []
        assert context.client.ledger.searches == 0
        assert context.client.ledger.total == 0.0

    def test_probe_trace_phase_preserved(self):
        server = BatchingTextServer(BooleanTextServer(make_store()))
        catalog = Catalog()
        author = catalog.create_table(
            "author", Schema.of(("name", DataType.VARCHAR))
        )
        author.insert_many([[name] for name in AUTHORS])
        query = MultiJoinQuery(
            relations=("author",),
            text_predicates=(TextJoinPredicate("author.name", "author"),),
            text_source="m",
        )
        plan = ProbeNode(
            child=ScanNode("author"),
            probe_columns=("author.name",),
            probe_predicates=(TextJoinPredicate("author.name", "author"),),
        )
        client = TextClient(server, log_calls=True)
        context = JoinContext(catalog, client)
        execute_plan(plan, query, context)
        batch_spans = [
            span for span in client.tracer.spans if span.kind == "batch"
        ]
        assert batch_spans, "batched probes must still be traced"
        assert all(span.phase == "probe" for span in batch_spans)


class TestLongFormUpgradeBatching:
    """_doc_rows upgrades travel as one retrieve_many, charged per doc."""

    @staticmethod
    def hidden_field_store() -> DocumentStore:
        # 'author' is NOT a short field: every text-scan document needs a
        # long-form upgrade before author columns can be produced.
        store = DocumentStore(["title", "author"], short_fields=["title"])
        store.add_record("d1", title="alpha join", author="garcia")
        store.add_record("d2", title="alpha text", author="gravano")
        store.add_record("d3", title="alpha cost", author="chaudhuri")
        return store

    def scan_world(self, server):
        catalog = Catalog()
        catalog.create_table("author", Schema.of(("name", DataType.VARCHAR)))
        selection = TextSelection("alpha", "title")
        query = MultiJoinQuery(
            relations=("author",),
            text_predicates=(),
            text_selections=(selection,),
            text_source="m",
            long_form=True,
        )
        plan = TextScanNode(selections=(selection,))
        client = TextClient(server)
        context = JoinContext(catalog, client)
        execution = execute_plan(plan, query, context)
        return execution, client

    def test_upgrades_batch_with_identical_charges(self):
        serial_server = BooleanTextServer(self.hidden_field_store())
        execution, client = self.scan_world(serial_server)
        authors = sorted(row["m.author"] for row in execution.rows)
        assert authors == ["chaudhuri", "garcia", "gravano"]
        # One c_l per distinct upgraded document, exactly as the serial
        # retrieve loop charged.
        assert client.ledger.long_documents == 3
        assert serial_server.counters.long_documents == 3

    def test_retrieve_many_dispatches_one_server_batch(self):
        """The client forwards the distinct misses as ONE server-level
        retrieve_many (so pooled transports overlap the fetches)."""
        server = BooleanTextServer(self.hidden_field_store())
        calls = []
        original = server.retrieve_many

        def spy(docids):
            calls.append(list(docids))
            return original(docids)

        server.retrieve_many = spy
        execution, client = self.scan_world(server)
        assert len(execution.rows) == 3
        assert len(calls) == 1
        assert sorted(calls[0]) == ["d1", "d2", "d3"]
        assert client.ledger.long_documents == 3

    def test_duplicate_docids_charged_once(self):
        server = BooleanTextServer(self.hidden_field_store())
        client = TextClient(server)
        documents = client.retrieve_many(["d1", "d2", "d1", "d2", "d1"])
        assert [doc.docid for doc in documents] == ["d1", "d2"]
        assert client.ledger.long_documents == 2
        assert server.counters.long_documents == 2

    def test_batched_retrieves_match_serial_charges(self):
        batched_server = BooleanTextServer(self.hidden_field_store())
        batched = TextClient(batched_server)
        batched.retrieve_many(["d1", "d2", "d3"])

        serial_server = BooleanTextServer(self.hidden_field_store())
        serial = TextClient(serial_server)
        for docid in ["d1", "d2", "d3"]:
            serial.retrieve(docid)

        assert batched.ledger.total == serial.ledger.total
        assert (
            batched_server.counters.as_dict()
            == serial_server.counters.as_dict()
        )


class TestBatchSizeSelection:
    def test_plain_server_probes_serially(self):
        names, client = probe_fixture(BooleanTextServer(make_store()))
        assert client.ledger.searches == len(AUTHORS)
        assert names == SURVIVORS

    def test_single_probe_stays_serial_even_when_batching_exists(self):
        """One probe gains nothing from a batch invocation."""
        server = BatchingTextServer(BooleanTextServer(make_store()))
        catalog = Catalog()
        author = catalog.create_table(
            "author", Schema.of(("name", DataType.VARCHAR))
        )
        author.insert_many([["garcia"]])
        query = MultiJoinQuery(
            relations=("author",),
            text_predicates=(TextJoinPredicate("author.name", "author"),),
            text_source="m",
        )
        plan = ProbeNode(
            child=ScanNode("author"),
            probe_columns=("author.name",),
            probe_predicates=(TextJoinPredicate("author.name", "author"),),
        )
        client = TextClient(server, log_calls=True)
        context = JoinContext(catalog, client)
        execute_plan(plan, query, context)
        probe_spans = [
            span for span in client.tracer.spans if span.kind == "probe"
        ]
        assert len(probe_spans) == 1
        assert client.ledger.searches == 1
