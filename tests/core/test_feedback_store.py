"""Persistence tests for :class:`repro.core.feedback.FeedbackStore`:
hypothesis round-trips, fingerprint invalidation, corrupt stores."""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.feedback import (
    DEFAULT_PRIOR_WEIGHT,
    MAX_EVENTS,
    MAX_METHOD_RUNS,
    STORE_FORMAT,
    FeedbackStore,
)
from repro.errors import FeedbackError, StatisticsError
from repro.gateway.statistics import PredicateStatistics

finite = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)
names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz.|:", min_size=1, max_size=12
)

predicate_ops = st.tuples(
    names,  # fingerprint
    names,  # column
    names,  # field
    st.integers(min_value=1, max_value=1000),  # searches
    st.integers(min_value=-5, max_value=2000),  # matched (clamped)
    finite,  # documents (clamped)
)
method_ops = st.tuples(names, names, names, finite, finite)
event_ops = st.tuples(
    st.sampled_from(["abort", "method", "node", "predicate"]),
    names,
    finite,
    finite,
    st.sampled_from(["rows", "seconds", "documents", "fanout"]),
    names,
)


def populated_store(predicates, methods, events, prior_weight):
    store = FeedbackStore(prior_weight=prior_weight)
    for fingerprint, column, field, searches, matched, documents in predicates:
        store.observe_predicate(
            fingerprint, column, field, searches, matched, documents
        )
    for fingerprint, key, method, estimated, actual in methods:
        store.observe_method(fingerprint, key, method, estimated, actual)
    for kind, label, estimated, actual, unit, detail in events:
        store.record_event(kind, label, estimated, actual, unit, detail)
    return store


class TestRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(
        predicates=st.lists(predicate_ops, max_size=8),
        methods=st.lists(method_ops, max_size=8),
        events=st.lists(event_ops, max_size=8),
        prior_weight=st.floats(
            min_value=0.0, max_value=1e6, allow_nan=False
        ),
    )
    def test_payload_identity(self, predicates, methods, events, prior_weight):
        store = populated_store(predicates, methods, events, prior_weight)
        rebuilt = FeedbackStore.from_payload(store.to_payload())
        assert rebuilt == store
        assert rebuilt.summary() == store.summary()

    @settings(max_examples=25, deadline=None)
    @given(
        predicates=st.lists(predicate_ops, max_size=6),
        methods=st.lists(method_ops, max_size=6),
        events=st.lists(event_ops, max_size=6),
    )
    def test_save_load_identity(self, tmp_path_factory, predicates, methods,
                                events):
        store = populated_store(
            predicates, methods, events, DEFAULT_PRIOR_WEIGHT
        )
        path = str(tmp_path_factory.mktemp("fb") / "store.json")
        assert store.save(path) == path
        loaded = FeedbackStore.load(path)
        assert loaded == store
        assert loaded.path == path
        # Saving the load writes the identical payload again.
        loaded.save()
        assert FeedbackStore.load(path) == store

    def test_observations_accumulate_across_a_round_trip(self, tmp_path):
        path = str(tmp_path / "store.json")
        store = FeedbackStore(path=path)
        store.observe_predicate("fp", "c", "f", 4, 2, 8.0)
        store.save()
        reloaded = FeedbackStore.open(path)
        reloaded.observe_predicate("fp", "c", "f", 4, 4, 8.0)
        merged = reloaded.observation("fp", "c", "f")
        assert merged.searches == 8
        assert merged.matched == 6
        assert merged.documents == 16.0

    def test_bounded_history_survives_round_trips(self):
        store = FeedbackStore()
        for index in range(MAX_EVENTS + 50):
            store.record_event("abort", f"e{index}", 1.0, 2.0)
        for index in range(MAX_METHOD_RUNS + 50):
            store.observe_method("fp", "q", "TS", 1.0, float(index))
        payload = FeedbackStore.from_payload(store.to_payload()).to_payload()
        assert len(payload["events"]) == MAX_EVENTS
        assert payload["events"][0]["label"] == "e50"
        runs = payload["methods"]["fp|q|TS"]["runs"]
        assert len(runs) == MAX_METHOD_RUNS
        assert runs[-1]["actual"] == float(MAX_METHOD_RUNS + 49)


class TestFingerprintInvalidation:
    PRIOR = PredicateStatistics("c", "f", selectivity=0.5, fanout=2.0)

    def test_other_corpus_observations_never_apply(self):
        store = FeedbackStore(prior_weight=1.0)
        store.observe_predicate("corpus-a", "c", "f", 100, 100, 900.0)
        assert store.blend(self.PRIOR, "corpus-b") == self.PRIOR
        blended = store.blend(self.PRIOR, "corpus-a")
        assert blended.fanout > self.PRIOR.fanout

    def test_stale_observations_stay_isolated_after_reload(self, tmp_path):
        path = str(tmp_path / "store.json")
        store = FeedbackStore(path=path, prior_weight=1.0)
        store.observe_predicate("corpus-a", "c", "f", 100, 100, 900.0)
        store.save()
        reloaded = FeedbackStore.load(path)
        assert reloaded.blend(self.PRIOR, "corpus-b") == self.PRIOR
        assert reloaded.observation("corpus-b", "c", "f") is None
        assert reloaded.observation("corpus-a", "c", "f") is not None


class TestCorruptStores:
    def _reject(self, tmp_path, content):
        path = str(tmp_path / "store.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(content)
        with pytest.raises(FeedbackError):
            FeedbackStore.load(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FeedbackError):
            FeedbackStore.load(str(tmp_path / "absent.json"))

    def test_truncated_json(self, tmp_path):
        store = FeedbackStore()
        store.observe_predicate("fp", "c", "f", 4, 2, 8.0)
        full = json.dumps(store.to_payload())
        self._reject(tmp_path, full[: len(full) // 2])

    def test_not_an_object(self, tmp_path):
        self._reject(tmp_path, "[1, 2, 3]")

    def test_wrong_format_version(self, tmp_path):
        self._reject(tmp_path, json.dumps({"format": STORE_FORMAT + 1}))

    def test_non_numeric_counts(self, tmp_path):
        payload = {
            "format": STORE_FORMAT,
            "predicates": {
                "k": {
                    "fingerprint": "fp",
                    "column": "c",
                    "field": "f",
                    "searches": "many",
                    "matched": 1,
                    "documents": 2.0,
                }
            },
        }
        self._reject(tmp_path, json.dumps(payload))

    def test_out_of_range_counts(self, tmp_path):
        payload = {
            "format": STORE_FORMAT,
            "predicates": {
                "k": {
                    "fingerprint": "fp",
                    "column": "c",
                    "field": "f",
                    "searches": 2,
                    "matched": 5,  # matched > searches
                    "documents": 2.0,
                }
            },
        }
        self._reject(tmp_path, json.dumps(payload))

    def test_nan_smuggled_in(self, tmp_path):
        # json.dumps happily writes NaN; loading must refuse it rather
        # than let it poison a blend.
        payload = {
            "format": STORE_FORMAT,
            "prior_weight": float("nan"),
        }
        self._reject(tmp_path, json.dumps(payload))

    def test_corrupt_store_never_yields_estimates(self, tmp_path):
        """The contract: a broken store is a clean typed error up front,
        never a store that silently hands out wrong blends."""
        path = str(tmp_path / "store.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{broken")
        with pytest.raises(FeedbackError):
            FeedbackStore.open(path)

    def test_save_needs_a_path(self):
        with pytest.raises(FeedbackError):
            FeedbackStore().save()

    def test_atomic_save_leaves_no_temp_droppings(self, tmp_path):
        path = str(tmp_path / "store.json")
        store = FeedbackStore()
        store.observe_predicate("fp", "c", "f", 4, 2, 8.0)
        store.save(path)
        store.save(path)
        assert sorted(os.listdir(tmp_path)) == ["store.json"]


class TestConstruction:
    def test_negative_prior_weight_rejected(self):
        with pytest.raises((FeedbackError, StatisticsError)):
            FeedbackStore(prior_weight=-1.0)

    def test_open_creates_fresh_bound_store(self, tmp_path):
        path = str(tmp_path / "new.json")
        store = FeedbackStore.open(path, prior_weight=2.0)
        assert store.path == path
        assert store.prior_weight == 2.0
        assert not os.path.exists(path)  # nothing written until save()
