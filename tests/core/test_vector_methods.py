"""Per-backend method legality and the ranked strategy space.

The Section 3 methods are sound only under Boolean monotone semantics;
a vector backend gets V-TOPK / V-SCAN instead.  These tests pin the
legality guard from every direction — enumerator, explicit method
override, strategy-side check — and the cost formulas and execution
semantics of the two ranked strategies.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.costmodel import (
    VectorCostInputs,
    cost_vector_scan,
    cost_vector_topk,
)
from repro.core.inputs import build_cost_inputs
from repro.core.joinmethods import (
    JoinContext,
    ProbeRtp,
    ProbeSemiJoin,
    ProbeTupleSubstitution,
    RelationalTextProcessing,
    SemiJoin,
    SemiJoinRtp,
    TupleSubstitution,
    VectorCorpusScan,
    VectorTopKProbe,
    ensure_method_legal,
)
from repro.core.optimizer.single_join import enumerate_method_choices
from repro.core.query import (
    ResultShape,
    TextJoinPredicate,
    TextJoinQuery,
    VectorJoinPredicate,
)
from repro.errors import (
    JoinMethodError,
    OptimizationError,
    PlanError,
    StatisticsError,
)
from repro.gateway.client import TextClient
from repro.gateway.costs import VECTOR_CONSTANTS
from repro.relational.catalog import Catalog
from repro.relational.schema import Schema
from repro.relational.types import DataType
from repro.textsys.documents import DocumentStore
from repro.textsys.server import BooleanTextServer
from repro.textsys.vectorserver import VectorTextServer

BOOLEAN_METHODS = [
    TupleSubstitution,
    RelationalTextProcessing,
    SemiJoin,
    SemiJoinRtp,
    ProbeTupleSubstitution,
    ProbeRtp,
    ProbeSemiJoin,
]


def make_method(method_class):
    """Instantiate any Section 3 method; probes need their columns."""
    if method_class in (ProbeTupleSubstitution, ProbeRtp):
        return method_class(("paper.title",))
    return method_class()


@pytest.fixture
def store() -> DocumentStore:
    store = DocumentStore(["title", "topic"], short_fields=["title", "topic"])
    store.add_record("d1", title="belief update", topic="belief revision")
    store.add_record("d2", title="query plans", topic="query optimization")
    store.add_record("d3", title="text joins", topic="text query systems")
    return store


@pytest.fixture
def catalog() -> Catalog:
    catalog = Catalog()
    table = catalog.create_table(
        "paper",
        Schema.of(("topic", DataType.VARCHAR), ("title", DataType.VARCHAR)),
    )
    table.insert(["belief revision", "belief update"])
    table.insert(["query optimization", "query plans"])
    table.insert([None, "nulls never bind"])
    return catalog


@pytest.fixture
def vector_context(store, catalog) -> JoinContext:
    client = TextClient(
        VectorTextServer(store, "topic"), constants=VECTOR_CONSTANTS
    )
    return JoinContext(catalog, client)


@pytest.fixture
def boolean_context(store, catalog) -> JoinContext:
    return JoinContext(catalog, TextClient(BooleanTextServer(store)))


@pytest.fixture
def boolean_query() -> TextJoinQuery:
    return TextJoinQuery(
        relation="paper",
        join_predicates=(TextJoinPredicate("paper.title", "title"),),
        shape=ResultShape.TUPLES,
    )


class TestMethodLegality:
    @pytest.mark.parametrize("method_class", BOOLEAN_METHODS)
    def test_section3_methods_refuse_vector_sources(self, method_class):
        with pytest.raises(OptimizationError, match="monotonicity"):
            ensure_method_legal(make_method(method_class), "vector")

    @pytest.mark.parametrize("method_class", BOOLEAN_METHODS)
    def test_section3_methods_accept_boolean_sources(self, method_class):
        ensure_method_legal(make_method(method_class), "boolean")  # no raise

    def test_forced_override_raises_typed_error(
        self, vector_context, boolean_query
    ):
        """Explicitly executing a Boolean method against the vector
        backend — the 'method override' escape hatch — must fail with
        the typed OptimizationError, not run unsoundly."""
        with pytest.raises(OptimizationError, match="Section 8"):
            TupleSubstitution().execute(boolean_query, vector_context)

    def test_vector_strategies_refuse_boolean_clients(self, boolean_context):
        predicate = VectorJoinPredicate("paper.topic", "topic")
        with pytest.raises(JoinMethodError, match="'vector' backend"):
            VectorTopKProbe().run(predicate, [], boolean_context)
        with pytest.raises(JoinMethodError, match="'vector' backend"):
            VectorCorpusScan().run(predicate, [], boolean_context)

    def test_input_gathering_fails_fast_on_vector_backends(
        self, vector_context, boolean_query
    ):
        """Statistics sampling never even starts against a ranked source —
        the guard fires before any Boolean probe is sent."""
        with pytest.raises(OptimizationError, match="Boolean"):
            build_cost_inputs(boolean_query, vector_context)

    def test_enumerator_refuses_vector_inputs(
        self, boolean_context, boolean_query
    ):
        inputs = build_cost_inputs(boolean_query, boolean_context)
        assert inputs.source_kind == "boolean"
        enumerate_method_choices(boolean_query, inputs)  # legal here
        tainted = dataclasses.replace(inputs, source_kind="vector")
        with pytest.raises(OptimizationError, match="Boolean"):
            enumerate_method_choices(boolean_query, tainted)

    def test_enumerator_guard_on_the_witness_corpus(self, catalog):
        """The Section 8 witness promoted to an optimizer guard: on a
        corpus where adding a term ADDS an answer, the enumerator never
        emits any probe-based method for the vector source."""
        store = DocumentStore(["body"], short_fields=["body"])
        store.add_record("rare", body="zeppelin zeppelin zeppelin")
        store.add_record("mixed", body="zeppelin database systems")
        store.add_record("common", body="database systems design")
        server = VectorTextServer(store, "body")
        # First, the witness itself: wider query, strictly more answers.
        narrow = server.engine.result_docids(["zeppelin"])
        wide = server.engine.result_docids(["zeppelin", "design"])
        assert set(wide) - set(narrow)
        # Then the guard: the Section 3 space is closed to this source.
        context = JoinContext(
            catalog, TextClient(server, constants=VECTOR_CONSTANTS)
        )
        query = TextJoinQuery(
            relation="paper",
            join_predicates=(TextJoinPredicate("paper.title", "body"),),
            shape=ResultShape.TUPLES,
        )
        with pytest.raises(OptimizationError):
            build_cost_inputs(query, context)
        for method_class in BOOLEAN_METHODS:
            with pytest.raises((OptimizationError, JoinMethodError)):
                make_method(method_class).execute(query, context)


class TestVectorPredicate:
    def test_validation(self):
        with pytest.raises(PlanError):
            VectorJoinPredicate("", "topic")
        with pytest.raises(PlanError):
            VectorJoinPredicate("paper.topic", "")
        with pytest.raises(PlanError):
            VectorJoinPredicate("paper.topic", "topic", top_k=0)

    def test_repr_carries_parameters(self):
        predicate = VectorJoinPredicate("paper.topic", "topic", top_k=7)
        assert "k=7" in repr(predicate)
        unbounded = VectorJoinPredicate("paper.topic", "topic", top_k=None)
        assert "k=all" in repr(unbounded)


class TestCostFormulas:
    def make_inputs(self, **overrides) -> VectorCostInputs:
        parameters = dict(
            constants=VECTOR_CONSTANTS,
            document_count=100,
            binding_count=4.0,
            postings_per_search=20.0,
            expected_results=5.0,
            top_k=5,
            scan_visible=True,
        )
        parameters.update(overrides)
        return VectorCostInputs(**parameters)

    def test_topk_formula_exact(self):
        inputs = self.make_inputs()
        estimate = cost_vector_topk(inputs)
        constants = VECTOR_CONSTANTS
        assert estimate.method == "V-TOPK(k=5)"
        assert estimate.searches == 4.0
        assert estimate.invocation == pytest.approx(4 * constants.invocation)
        assert estimate.processing == pytest.approx(4 * 20 * constants.per_posting)
        assert estimate.transmission_short == pytest.approx(
            4 * 5 * constants.short_form
        )
        assert estimate.total == pytest.approx(
            estimate.invocation + estimate.processing
            + estimate.transmission_short
        )

    def test_topk_unbounded_label(self):
        estimate = cost_vector_topk(self.make_inputs(top_k=None))
        assert estimate.method == "V-TOPK(k=all)"

    def test_scan_formula_exact(self):
        inputs = self.make_inputs()
        estimate = cost_vector_scan(inputs)
        constants = VECTOR_CONSTANTS
        assert estimate.method == "V-SCAN"
        assert estimate.searches == 1
        assert estimate.invocation == pytest.approx(constants.invocation)
        assert estimate.transmission_short == pytest.approx(
            100 * constants.short_form
        )
        assert estimate.rtp == pytest.approx(100 * 4 * constants.rtp_per_document)

    def test_scan_requires_visibility(self):
        with pytest.raises(StatisticsError, match="short"):
            cost_vector_scan(self.make_inputs(scan_visible=False))

    def test_negative_inputs_rejected(self):
        with pytest.raises(StatisticsError):
            self.make_inputs(binding_count=-1.0)
        with pytest.raises(StatisticsError):
            self.make_inputs(postings_per_search=-0.5)

    def test_crossover_in_binding_count(self):
        """Few bindings favor V-TOPK; many bindings favor V-SCAN."""
        few = self.make_inputs(binding_count=1.0)
        many = self.make_inputs(binding_count=50.0)
        assert cost_vector_topk(few).total < cost_vector_scan(few).total
        assert cost_vector_scan(many).total < cost_vector_topk(many).total


class TestStrategyExecution:
    def rows(self, context):
        return list(context.catalog.table("paper").scan())

    def test_topk_dedupes_bindings_and_skips_nulls(self, vector_context):
        predicate = VectorJoinPredicate("paper.topic", "topic", top_k=2)
        rows = self.rows(vector_context) + self.rows(vector_context)
        execution = VectorTopKProbe().run(predicate, rows, vector_context)
        # 2 distinct non-NULL bindings, despite 6 input rows.
        assert execution.searches == 2
        assert len(execution.row_matches) == 6
        null_rows = [
            matches
            for row, matches in execution.row_matches
            if row["paper.topic"] is None
        ]
        assert null_rows == [(), ()]

    def test_scan_and_topk_agree_on_matches(self, vector_context):
        predicate = VectorJoinPredicate("paper.topic", "topic", top_k=3)
        rows = self.rows(vector_context)
        probe = VectorTopKProbe().run(predicate, rows, vector_context)
        scan = VectorCorpusScan().run(predicate, rows, vector_context)
        assert probe.result_keys() == scan.result_keys()
        assert probe.result_keys()
        assert probe.matched_rows() and scan.matched_rows()

    def test_scan_searches_once_and_charges_rtp(self, vector_context):
        predicate = VectorJoinPredicate("paper.topic", "topic")
        execution = VectorCorpusScan().run(
            predicate, self.rows(vector_context), vector_context
        )
        assert execution.searches == 1
        assert execution.cost.searches == 1
        # 2 distinct bindings x 3 dumped documents each.
        assert execution.cost.rtp_documents == 6
        assert execution.cost.short_documents == 3

    def test_scan_inapplicable_without_short_visibility(self, catalog):
        hidden = DocumentStore(["topic"], short_fields=[])
        hidden.add_record("d1", topic="belief revision")
        context = JoinContext(
            catalog,
            TextClient(
                VectorTextServer(hidden, "topic"), constants=VECTOR_CONSTANTS
            ),
        )
        predicate = VectorJoinPredicate("paper.topic", "topic")
        assert not VectorCorpusScan().applicable(predicate, context)
        with pytest.raises(JoinMethodError, match="not applicable"):
            VectorCorpusScan().run(predicate, [], context)
        assert VectorTopKProbe().applicable(predicate, context)

    def test_charges_use_vector_constants(self, vector_context):
        predicate = VectorJoinPredicate("paper.topic", "topic", top_k=2)
        execution = VectorTopKProbe().run(
            predicate, self.rows(vector_context), vector_context
        )
        constants = VECTOR_CONSTANTS
        expected = (
            execution.cost.searches * constants.invocation
            + execution.cost.postings_processed * constants.per_posting
            + execution.cost.short_documents * constants.short_form
        )
        assert execution.cost.total == pytest.approx(expected)
        assert execution.simulated_seconds == execution.cost.total
