"""Property tests for the multi-join optimizer (invariants 8 and 9).

On randomly generated multi-relation worlds:

- every execution space returns exactly the reference (brute-force)
  result;
- the PrL-space estimated cost never exceeds the traditional-space
  estimated cost, and the extended space never exceeds PrL.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.executor import execute_plan
from repro.core.joinmethods.base import JoinContext
from repro.core.optimizer.enumerate import optimize_multijoin
from repro.core.optimizer.estimator import PlanEstimator
from repro.core.optimizer.multiquery import (
    MultiJoinQuery,
    RelationalJoinPredicate,
)
from repro.core.query import TextJoinPredicate, TextSelection
from repro.core.textmatch import value_matches_field
from repro.gateway.client import TextClient
from repro.relational.catalog import Catalog
from repro.relational.expressions import ColumnRef, Comparison
from repro.relational.schema import Schema
from repro.relational.types import DataType
from repro.textsys.documents import Document, DocumentStore
from repro.textsys.server import BooleanTextServer

NAMES = ["ada", "bob", "cyd", "dee", "eli"]
KEYS = ["k1", "k2", "k3"]
YEARS = ["may 1993", "june 1994"]


def random_world(seed: int):
    """2–3 chain-joined relations + a text source with random authorship."""
    rng = random.Random(seed)
    catalog = Catalog()
    relation_count = rng.randint(2, 3)
    relations = []
    for index in range(relation_count):
        name = f"t{index}"
        table = catalog.create_table(
            name,
            Schema.of(("key", DataType.VARCHAR), ("who", DataType.VARCHAR)),
        )
        for _ in range(rng.randint(1, 6)):
            table.insert([rng.choice(KEYS), rng.choice(NAMES + [None])])
        relations.append(name)

    store = DocumentStore(
        ["title", "author", "year"], short_fields=["title", "author", "year"]
    )
    for i in range(rng.randint(1, 10)):
        authors = " ".join(rng.sample(NAMES, rng.randint(0, 3)))
        store.add(
            Document(
                f"d{i}",
                {
                    "title": "report",
                    "author": authors,
                    "year": rng.choice(YEARS),
                },
            )
        )
    server = BooleanTextServer(store)

    # Text predicates on a random non-empty subset of relations.
    text_relations = rng.sample(relations, rng.randint(1, len(relations)))
    text_predicates = tuple(
        TextJoinPredicate(f"{relation}.who", "author")
        for relation in text_relations
    )
    join_predicates = tuple(
        RelationalJoinPredicate(
            Comparison(
                "=",
                ColumnRef(f"{relations[i]}.key"),
                ColumnRef(f"{relations[i + 1]}.key"),
            ),
            (relations[i], relations[i + 1]),
        )
        for i in range(relation_count - 1)
    )
    selections = (
        (TextSelection("may 1993", "year"),) if rng.random() < 0.5 else ()
    )
    query = MultiJoinQuery(
        relations=tuple(relations),
        text_predicates=text_predicates,
        text_selections=selections,
        join_predicates=join_predicates,
        text_source="doc",
    )
    return catalog, server, query


def reference_result(catalog, server, query):
    """Brute-force evaluation: cartesian product x documents, filtered."""
    tables = [list(catalog.table(name).scan()) for name in query.relations]

    def combos(index, acc):
        if index == len(tables):
            yield acc
            return
        for row in tables[index]:
            yield from combos(index + 1, acc + [row])

    expected = set()
    for combo in combos(0, []):
        by_relation = dict(zip(query.relations, combo))
        ok = True
        for predicate in query.join_predicates:
            a, b = predicate.relations
            joined = by_relation[a].concat(by_relation[b])
            if predicate.expression.evaluate(joined) is not True:
                ok = False
                break
        if not ok:
            continue
        for document in server.store:
            if not all(
                value_matches_field(selection.term, document.field(selection.field))
                for selection in query.text_selections
            ):
                continue
            matched = True
            for predicate in query.text_predicates:
                value = by_relation[
                    predicate.column.split(".", 1)[0]
                ][predicate.column]
                if value is None or not value_matches_field(
                    str(value), document.field(predicate.field)
                ):
                    matched = False
                    break
            if matched:
                key = tuple(
                    by_relation[relation]["who"] for relation in query.relations
                ) + tuple(
                    by_relation[relation]["key"] for relation in query.relations
                ) + (document.docid,)
                expected.add(key)
    return expected


def plan_result(execution, query):
    out = set()
    for row in execution.rows:
        key = tuple(
            row[f"{relation}.who"] for relation in query.relations
        ) + tuple(
            row[f"{relation}.key"] for relation in query.relations
        ) + (row[f"{query.text_source}.docid"],)
        out.add(key)
    return out


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_every_space_matches_reference(seed):
    catalog, server, query = random_world(seed)
    expected = reference_result(catalog, server, query)
    for space in ("traditional", "prl", "extended"):
        context = JoinContext(catalog, TextClient(server))
        estimator = PlanEstimator(query, context)
        optimized = optimize_multijoin(query, estimator, space=space)
        execution = execute_plan(
            optimized.plan, query, JoinContext(catalog, TextClient(server))
        )
        assert plan_result(execution, query) == expected, (space, seed)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_space_costs_nest(seed):
    """estimated(extended) <= estimated(prl) <= estimated(traditional)."""
    catalog, server, query = random_world(seed)
    costs = {}
    for space in ("traditional", "prl", "extended"):
        context = JoinContext(catalog, TextClient(server))
        estimator = PlanEstimator(query, context)
        costs[space] = optimize_multijoin(
            query, estimator, space=space
        ).estimated_cost
    assert costs["prl"] <= costs["traditional"] + 1e-9, seed
    assert costs["extended"] <= costs["prl"] + 1e-9, seed
