"""The heterogeneous planner: one optimizer, two backends, one query.

Integration tests run the deliverable multibackend scenario end to end;
unit tests pin ``build_vector_cost_inputs`` measurement semantics and
the per-backend choice machinery on a hand-built corpus.
"""

from __future__ import annotations

import pytest

from repro.bench.multibackend import build_multibackend_scenario
from repro.core.heterogeneous import (
    HeterogeneousJoinQuery,
    build_vector_cost_inputs,
    choose_vector_strategy,
    enumerate_vector_choices,
    execute_heterogeneous,
    explain_heterogeneous,
    plan_heterogeneous,
)
from repro.core.joinmethods import JoinContext
from repro.core.query import (
    ResultShape,
    TextJoinPredicate,
    TextJoinQuery,
    VectorJoinPredicate,
)
from repro.errors import PlanError
from repro.gateway.client import TextClient
from repro.gateway.costs import VECTOR_CONSTANTS
from repro.relational.catalog import Catalog
from repro.relational.schema import Schema
from repro.relational.types import DataType
from repro.textsys.documents import DocumentStore
from repro.textsys.vectorserver import VectorTextServer


@pytest.fixture(scope="module")
def scenario():
    return build_multibackend_scenario()


@pytest.fixture(scope="module")
def planned(scenario):
    scenario.registry.reset()
    query = scenario.query()
    plan = plan_heterogeneous(
        query, scenario.boolean_context(), scenario.vector_context()
    )
    return query, plan


@pytest.fixture
def small_catalog() -> Catalog:
    catalog = Catalog()
    table = catalog.create_table(
        "paper", Schema.of(("topic", DataType.VARCHAR))
    )
    table.insert(["belief revision"])
    table.insert(["belief revision"])  # duplicate binding
    table.insert(["query optimization"])
    table.insert([None])  # NULL never binds
    return catalog


@pytest.fixture
def small_store() -> DocumentStore:
    store = DocumentStore(["topic"], short_fields=["topic"])
    store.add_record("d1", topic="belief revision systems")
    store.add_record("d2", topic="query optimization")
    store.add_record("d3", topic="belief networks")
    return store


@pytest.fixture
def small_context(small_catalog, small_store) -> JoinContext:
    client = TextClient(
        VectorTextServer(small_store, "topic"), constants=VECTOR_CONSTANTS
    )
    return JoinContext(small_catalog, client)


class TestQueryValidation:
    def test_boolean_half_must_be_tuples_shaped(self):
        semi = TextJoinQuery(
            relation="paper",
            join_predicates=(TextJoinPredicate("paper.topic", "topic"),),
            shape=ResultShape.DOCIDS,
        )
        with pytest.raises(PlanError, match="TUPLES"):
            HeterogeneousJoinQuery(
                boolean=semi,
                vector=VectorJoinPredicate("paper.topic", "abstract"),
            )

    def test_relation_comes_from_the_boolean_half(self, scenario):
        query = scenario.query()
        assert query.relation == "student"
        assert "AND" in repr(query)


class TestPlanning:
    def test_plan_splits_methods_per_backend(self, planned):
        _, plan = planned
        assert plan.boolean_choice.name.startswith("P(")
        assert plan.vector_choice.name == "V-TOPK(k=5)"

    def test_choices_ranked_cheapest_first(self, planned):
        _, plan = planned
        for choices in (plan.boolean_choices, plan.vector_choices):
            totals = [choice.estimate.total for choice in choices]
            assert totals == sorted(totals)

    def test_total_estimate_sums_both_halves(self, planned):
        _, plan = planned
        assert plan.total_estimate == pytest.approx(
            plan.boolean_choice.estimate.total
            + plan.vector_choice.estimate.total
        )

    def test_explain_shows_both_method_spaces(self, planned):
        _, plan = planned
        explain = explain_heterogeneous(plan)
        assert "Boolean backend (Section 3 method space)" in explain
        assert "Vector backend (ranked strategy space)" in explain
        assert explain.count("Chosen:") == 2
        assert "Predicted total:" in explain
        assert "V-TOPK" in explain


class TestExecution:
    def test_execute_returns_ranked_survivors(self, scenario, planned):
        query, plan = planned
        execution = execute_heterogeneous(
            query,
            scenario.boolean_context(),
            scenario.vector_context(),
            plan=plan,
        )
        assert execution.plan is plan
        assert execution.rows
        names = {row["student.name"] for row in execution.rows}
        assert names <= set(scenario.parameters["coauthors"])
        for _, matches in execution.row_matches:
            assert matches
            scores = [entry.score for entry in matches]
            assert scores == sorted(scores, reverse=True)
            assert all(score > 0.0 for score in scores)

    def test_charges_split_across_backend_ledgers(self, scenario):
        scenario.registry.reset()
        execution = execute_heterogeneous(
            scenario.query(),
            scenario.boolean_context(),
            scenario.vector_context(),
        )
        boolean_total = scenario.registry.ledger(scenario.boolean_name).total
        vector_total = scenario.registry.ledger(scenario.vector_name).total
        assert boolean_total == pytest.approx(
            execution.boolean_execution.cost.total
        )
        assert vector_total == pytest.approx(
            execution.vector_execution.cost.total
        )
        assert execution.simulated_seconds == pytest.approx(
            boolean_total + vector_total
        )
        assert scenario.registry.total() == pytest.approx(
            boolean_total + vector_total
        )

    def test_execution_drops_unranked_survivors(self, scenario):
        """Tuples the Boolean half keeps but the vector half cannot rank
        never appear in the combined result."""
        scenario.registry.reset()
        execution = execute_heterogeneous(
            scenario.query(vector_column="student.name"),
            scenario.boolean_context(),
            scenario.vector_context(),
        )
        # Student names never occur in abstracts: everything is dropped.
        assert execution.rows == []
        assert execution.boolean_execution.tuples


class TestVectorCostInputs:
    def test_bindings_deduped_and_nulls_skipped(self, small_context):
        predicate = VectorJoinPredicate("paper.topic", "topic", top_k=2)
        rows = list(small_context.catalog.table("paper").scan())
        inputs = build_vector_cost_inputs(predicate, rows, small_context)
        # 4 rows -> 2 distinct non-NULL bindings.
        assert inputs.binding_count == 2.0
        assert inputs.document_count == 3
        assert inputs.top_k == 2
        assert inputs.scan_visible is True

    def test_postings_measured_from_document_frequencies(self, small_context):
        predicate = VectorJoinPredicate("paper.topic", "topic", top_k=2)
        rows = list(small_context.catalog.table("paper").scan())
        inputs = build_vector_cost_inputs(predicate, rows, small_context)
        server = small_context.client.server
        # binding "belief revision": df(belief)=2 + df(revision)=1 = 3;
        # binding "query optimization": df(query)=1 + df(optimization)=1.
        per_binding = [
            sum(
                server.document_frequency("topic", token)
                for token in tokens
            )
            for tokens in (["belief", "revision"], ["query", "optimization"])
        ]
        assert per_binding == [3, 2]
        assert inputs.postings_per_search == pytest.approx(
            sum(per_binding) / 2
        )
        # Expected results are capped by top_k per binding: min(3,2)=2,
        # min(2,2)=2.
        assert inputs.expected_results == pytest.approx(2.0)

    def test_empty_bindings_produce_zero_rates(self, small_context):
        predicate = VectorJoinPredicate("paper.topic", "topic")
        inputs = build_vector_cost_inputs(predicate, [], small_context)
        assert inputs.binding_count == 0.0
        assert inputs.postings_per_search == 0.0
        assert inputs.expected_results == 0.0

    def test_scan_invisible_when_field_not_short(self, small_catalog):
        hidden = DocumentStore(["topic"], short_fields=[])
        hidden.add_record("d1", topic="belief revision")
        context = JoinContext(
            small_catalog,
            TextClient(
                VectorTextServer(hidden, "topic"), constants=VECTOR_CONSTANTS
            ),
        )
        predicate = VectorJoinPredicate("paper.topic", "topic")
        rows = list(small_catalog.table("paper").scan())
        inputs = build_vector_cost_inputs(predicate, rows, context)
        assert inputs.scan_visible is False
        choices = enumerate_vector_choices(predicate, inputs)
        assert [choice.name for choice in choices] == ["V-TOPK(k=10)"]

    def test_choose_returns_the_cheapest_choice(self, small_context):
        predicate = VectorJoinPredicate("paper.topic", "topic", top_k=2)
        rows = list(small_context.catalog.table("paper").scan())
        inputs = build_vector_cost_inputs(predicate, rows, small_context)
        choices = enumerate_vector_choices(predicate, inputs)
        assert len(choices) == 2
        chosen = choose_vector_strategy(predicate, inputs)
        assert chosen.estimate.total == min(
            choice.estimate.total for choice in choices
        )
