"""Unit tests for the multi-join query model."""

import pytest

from repro.core.optimizer.multiquery import (
    TEXT_SOURCE,
    MultiJoinQuery,
    RelationalJoinPredicate,
)
from repro.core.query import TextJoinPredicate, TextSelection
from repro.errors import PlanError
from repro.relational.expressions import ColumnRef, Comparison


def join_pred(a="faculty", b="student"):
    return RelationalJoinPredicate(
        Comparison("!=", ColumnRef(f"{a}.dept"), ColumnRef(f"{b}.dept")),
        (a, b),
    )


def q5(**overrides):
    base = dict(
        relations=("student", "faculty"),
        text_predicates=(
            TextJoinPredicate("student.name", "author"),
            TextJoinPredicate("faculty.name", "author"),
        ),
        text_selections=(TextSelection("may 1993", "year"),),
        join_predicates=(join_pred(),),
    )
    base.update(overrides)
    return MultiJoinQuery(**base)


class TestValidation:
    def test_valid(self):
        q5()

    def test_duplicate_relations_rejected(self):
        with pytest.raises(PlanError):
            q5(relations=("student", "student"))

    def test_unqualified_text_column_rejected(self):
        with pytest.raises(PlanError):
            q5(text_predicates=(TextJoinPredicate("name", "author"),))

    def test_unknown_relation_in_text_predicate(self):
        with pytest.raises(PlanError):
            q5(text_predicates=(TextJoinPredicate("nobody.name", "author"),))

    def test_unknown_relation_in_join_predicate(self):
        with pytest.raises(PlanError):
            q5(join_predicates=(join_pred("faculty", "ghost"),))

    def test_join_predicate_needs_two_relations(self):
        with pytest.raises(PlanError):
            RelationalJoinPredicate(
                Comparison("=", ColumnRef("a.x"), ColumnRef("a.y")), ("a", "a")
            )

    def test_must_reference_text_source(self):
        with pytest.raises(PlanError):
            q5(text_predicates=(), text_selections=())

    def test_text_source_name_collision(self):
        with pytest.raises(PlanError):
            q5(text_source="student")

    def test_unknown_local_predicate_relation(self):
        with pytest.raises(PlanError):
            q5(local_predicates=(("ghost", Comparison("=", ColumnRef("x"), ColumnRef("y"))),))


class TestViews:
    def test_text_predicates_of(self):
        query = q5()
        preds = query.text_predicates_of("student")
        assert [p.column for p in preds] == ["student.name"]

    def test_text_predicates_within(self):
        query = q5()
        assert len(query.text_predicates_within(["student"])) == 1
        assert len(query.text_predicates_within(["student", "faculty"])) == 2
        assert query.text_predicates_within([]) == ()

    def test_join_predicates_between(self):
        query = q5()
        assert len(query.join_predicates_between(["student"], "faculty")) == 1
        assert query.join_predicates_between([], "faculty") == ()

    def test_relations_with_text_predicates(self):
        assert q5().relations_with_text_predicates() == ("student", "faculty")

    def test_local_predicate_lookup(self):
        predicate = Comparison("=", ColumnRef("student.dept"), ColumnRef("student.dept"))
        query = q5(local_predicates=(("student", predicate),))
        assert query.local_predicate("student") is predicate
        assert query.local_predicate("faculty") is None

    def test_covers(self):
        assert join_pred().covers(frozenset({"student", "faculty", "x"}))
        assert not join_pred().covers(frozenset({"student"}))

    def test_text_source_constant_distinct(self):
        assert TEXT_SOURCE not in q5().relations
