"""Tests for the enumerator's decision trace — including Example 6.2.

"While determining the optimal plan for {student, faculty}, the
optimizer also considers the costs of {student', faculty},
{student, faculty'}, as well as {student', faculty'}, where student' and
faculty' designate relations reduced by probes."
"""

import pytest

from repro.core.optimizer.enumerate import optimize_multijoin
from repro.core.optimizer.estimator import PlanEstimator


@pytest.fixture(scope="module")
def traced(scenario):
    query = scenario.q5()
    estimator = PlanEstimator(query, scenario.context())
    return optimize_multijoin(query, estimator, space="prl")


class TestExample62:
    def test_all_four_probe_alternatives_considered(self, traced):
        """For {student, faculty} the enumerator weighed (a) the plain
        join, (b)/(c) each side probed, and (d) both sides probed."""
        decision = traced.decision_for({"student", "faculty"})
        assert decision is not None
        # (a) plain: a join signature with no probe at all.
        assert any(
            "probe" not in signature for signature, _ in decision.candidates
        )
        # (b) student reduced.
        assert decision.considered("probe[student.name](student)")
        # (c) faculty reduced.
        assert decision.considered("probe[faculty.name](faculty)")
        # (d) both reduced: two probes in one candidate signature.
        assert any(
            signature.count("probe[") >= 2
            for signature, _ in decision.candidates
        )

    def test_winner_is_cheapest_candidate(self, traced):
        for decision in traced.trace:
            cheapest = min(decision.candidates, key=lambda pair: pair[1])
            assert decision.winner == cheapest[0]

    def test_trace_covers_every_decided_subset(self, traced):
        subsets = {decision.subset for decision in traced.trace}
        # In the PrL space Q5's text node must follow BOTH text-predicate
        # relations, so the only decidable subsets are {student, faculty}
        # and the full set.
        assert len(subsets) == 2
        assert frozenset({"student", "faculty"}) in subsets

    def test_decision_for_unknown_subset(self, traced):
        assert traced.decision_for({"nonexistent"}) is None
