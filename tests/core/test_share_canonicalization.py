"""Properties of the cross-query share canonicalization.

The sharing layer merges two searches only when their canonical forms
coincide.  Soundness demands two things, hypothesis-tested here:

- **Equal keys are truly interchangeable**: any commutation/re-nesting
  of the same connective keeps the key *and* the server's answer —
  docids, result size, and (invariant 11) ``postings_processed``.
- **Unequal keys never merge**: :class:`SharedWorkGraph` groups
  requests strictly by key; duplicates inside a conjunction are
  preserved (``AND(x, x, y)`` is NOT collapsed to ``AND(x, y)`` — the
  leaf multiset determines the charge, so dedup would falsify it).
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.optimizer.multiquery import (
    SharedWorkGraph,
    canonicalize_for_sharing,
    share_key,
)
from repro.textsys.query import AndQuery, NotQuery, OrQuery, TermQuery

TERMS = [
    ("title", "belief"),
    ("title", "text"),
    ("title", "systems"),
    ("abstract", "update"),
    ("abstract", "retrieval"),
    ("author", "gravano"),
]

leaves = st.sampled_from(TERMS).map(lambda pair: TermQuery(*pair))

trees = st.recursive(
    leaves,
    lambda children: st.builds(
        lambda operands, connective: connective(tuple(operands)),
        st.lists(children, min_size=2, max_size=3),
        st.sampled_from([AndQuery, OrQuery]),
    ),
    max_leaves=6,
)


def scramble(node, rng: random.Random):
    """An equivalent rewriting: shuffle operands, randomly re-nest."""
    if isinstance(node, (AndQuery, OrQuery)):
        connective = type(node)
        operands = [scramble(operand, rng) for operand in node.operands]
        rng.shuffle(operands)
        if len(operands) > 2 and rng.random() < 0.5:
            # Re-nest a random prefix under the same connective:
            # AND(a, b, c) -> AND(AND(a, b), c).
            split = rng.randrange(1, len(operands))
            operands = [connective(tuple(operands[:split]))] + operands[split:]
        if rng.random() < 0.3:
            rng.shuffle(operands)
        return connective(tuple(operands))
    if isinstance(node, NotQuery):
        return NotQuery(scramble(node.operand, rng))
    return node


@given(tree=trees, seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=100, deadline=None)
def test_equivalent_rewritings_share_one_key(tree, seed):
    variant = scramble(tree, random.Random(seed))
    assert share_key(tree) == share_key(variant)


@given(tree=trees, seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(
    max_examples=50,
    deadline=None,
    # The server is read-only under search; reuse across examples is safe.
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_equal_keys_mean_identical_server_answers(
    tree, seed, tiny_server
):
    """Merging is sound: the canonical stand-in and every rewriting
    produce the same docids AND the same postings charge."""
    variant = scramble(tree, random.Random(seed))
    assert share_key(tree) == share_key(variant)
    original = tiny_server.search(tree)
    rewritten = tiny_server.search(variant)
    canonical = tiny_server.search(canonicalize_for_sharing(tree))
    assert tuple(rewritten.docids) == tuple(original.docids)
    assert tuple(canonical.docids) == tuple(original.docids)
    assert rewritten.postings_processed == original.postings_processed
    assert canonical.postings_processed == original.postings_processed


@given(first=trees, second=trees)
@settings(max_examples=100, deadline=None)
def test_unequal_keys_are_never_grouped(first, second):
    graph = SharedWorkGraph()
    graph.add("r1", first)
    graph.add("r2", second)
    if share_key(first) == share_key(second):
        assert graph.distinct_searches == 1
        (unit,) = graph.units()
        assert unit.fan_out == 2
    else:
        assert graph.distinct_searches == 2
        for unit in graph.units():
            keys = {share_key(first), share_key(second)}
            assert unit.key in keys
            assert unit.fan_out == 1
    assert graph.total_requests == 2


def test_duplicates_inside_a_conjunction_are_preserved():
    """AND(x, x, y) keeps both x's: the leaf multiset (and with it the
    postings charge, invariant 11) survives canonicalization."""
    x = TermQuery("title", "belief")
    y = TermQuery("abstract", "update")
    doubled = AndQuery((x, AndQuery((x, y))))
    canonical = canonicalize_for_sharing(doubled)
    assert isinstance(canonical, AndQuery)
    assert len(canonical.operands) == 3
    assert share_key(doubled) != share_key(AndQuery((x, y)))


def test_not_operands_canonicalize_recursively():
    x = TermQuery("title", "belief")
    y = TermQuery("abstract", "update")
    left = AndQuery((x, NotQuery(OrQuery((x, y)))))
    right = AndQuery((NotQuery(OrQuery((y, x))), x))
    assert share_key(left) == share_key(right)


def test_string_and_node_forms_share_one_key():
    assert share_key("TI='belief' and AB='update'") == share_key(
        AndQuery(
            (TermQuery("abstract", "update"), TermQuery("title", "belief"))
        )
    )


def test_single_operand_connective_collapses():
    x = TermQuery("title", "belief")
    assert share_key(AndQuery((x,))) == share_key(x)
