"""Unit tests for build_cost_inputs (statistics gathering)."""

import pytest

from repro.core.inputs import build_cost_inputs, distinct_counts_for
from repro.core.query import TextJoinPredicate, TextJoinQuery, TextSelection
from repro.gateway.statistics import TextStatisticsRegistry
from repro.relational.expressions import ColumnRef, Comparison, Literal
from repro.relational.row import Row
from repro.relational.schema import Schema
from repro.relational.types import DataType


def q4_query():
    return TextJoinQuery(
        relation="student",
        join_predicates=(
            TextJoinPredicate("student.advisor", "author"),
            TextJoinPredicate("student.name", "author"),
        ),
    )


class TestDistinctCounts:
    def test_all_subsets(self):
        schema = Schema.of(("a", DataType.VARCHAR), ("b", DataType.VARCHAR))
        rows = [
            Row(schema, ["x", "1"]),
            Row(schema, ["x", "2"]),
            Row(schema, ["y", "1"]),
            Row(schema, ["y", None]),
        ]
        counts = distinct_counts_for(rows, ["a", "b"])
        assert counts[frozenset(["a"])] == 2
        assert counts[frozenset(["b"])] == 2
        # NULL-containing pair excluded.
        assert counts[frozenset(["a", "b"])] == 3

    def test_empty_rows(self):
        counts = distinct_counts_for([], ["a"])
        assert counts[frozenset(["a"])] == 0


class TestBuildCostInputs:
    def test_relational_side_exact(self, tiny_context):
        inputs = build_cost_inputs(q4_query(), tiny_context)
        assert inputs.tuple_count == 5
        assert inputs.distinct(["student.advisor"]) == 2
        assert inputs.distinct(["student.name"]) == 5

    def test_respects_relation_predicate(self, tiny_context):
        query = TextJoinQuery(
            relation="student",
            join_predicates=(TextJoinPredicate("student.name", "author"),),
            relation_predicate=Comparison(
                "=", ColumnRef("student.area"), Literal("AI")
            ),
        )
        inputs = build_cost_inputs(query, tiny_context)
        assert inputs.tuple_count == 3

    def test_predicate_statistics_exact(self, tiny_context):
        inputs = build_cost_inputs(q4_query(), tiny_context)
        # advisors: garcia (1 doc), ullman (0 docs) -> s=0.5, f=0.5
        advisor = inputs.predicate_stats["student.advisor"]
        assert advisor.selectivity == pytest.approx(0.5)
        assert advisor.fanout == pytest.approx(0.5)

    def test_selection_statistics_measured(self, tiny_context):
        query = TextJoinQuery(
            relation="student",
            join_predicates=(TextJoinPredicate("student.name", "author"),),
            text_selections=(TextSelection("belief update", "title"),),
        )
        inputs = build_cost_inputs(query, tiny_context)
        assert inputs.selection.present
        assert inputs.selection.result_size == 2.0
        assert inputs.selection.term_count == 1

    def test_no_selection_absent(self, tiny_context):
        inputs = build_cost_inputs(q4_query(), tiny_context)
        assert not inputs.selection.present

    def test_registry_caching(self, tiny_context):
        registry = TextStatisticsRegistry()
        build_cost_inputs(q4_query(), tiny_context, registry=registry)
        assert registry.has("student.advisor", "author")
        assert registry.has("student.name", "author")
        # Second build reuses the registry (same objects).
        inputs = build_cost_inputs(q4_query(), tiny_context, registry=registry)
        assert inputs.predicate_stats["student.name"] is registry.get(
            "student.name", "author"
        )

    def test_sampled_mode_charges_client(self, tiny_context):
        import random

        build_cost_inputs(
            q4_query(),
            tiny_context,
            exact=False,
            sample_size=2,
            rng=random.Random(0),
        )
        # 2 samples per predicate x 2 predicates.
        assert tiny_context.client.ledger.searches == 4

    def test_environment_parameters(self, tiny_context):
        inputs = build_cost_inputs(q4_query(), tiny_context)
        assert inputs.document_count == 4
        assert inputs.term_limit == 70
        assert inputs.g == 1
