"""Unit + property tests for probe-column selection (Section 5)."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.harness import make_inputs
from repro.core.costmodel import cost_p_ts
from repro.core.probe_select import candidate_probe_sets, optimal_probe_columns
from repro.core.query import TextJoinPredicate, TextJoinQuery
from repro.errors import OptimizationError


def query_over(columns):
    return TextJoinQuery(
        relation="r",
        join_predicates=tuple(
            TextJoinPredicate(column, "field") for column in columns
        ),
    )


def three_column_inputs(g=1):
    return make_inputs(
        tuple_count=1000,
        stats={
            "r.a": (0.1, 1.0),
            "r.b": (0.5, 3.0),
            "r.c": (0.9, 8.0),
        },
        distinct={"r.a": 20, "r.b": 100, "r.c": 5},
        g=g,
    )


class TestCandidates:
    def test_bounded_by_theorem(self):
        query = query_over(["r.a", "r.b", "r.c"])
        candidates = candidate_probe_sets(query, g=1)
        assert all(len(c) <= 2 for c in candidates)
        # singles + pairs of 3 columns = 3 + 3
        assert len(candidates) == 6

    def test_exhaustive_excludes_full_set_by_default(self):
        query = query_over(["r.a", "r.b", "r.c"])
        candidates = candidate_probe_sets(query, g=1, exhaustive=True)
        assert len(candidates) == 6  # 2^3 - 1 - full set

    def test_allow_full(self):
        query = query_over(["r.a", "r.b"])
        candidates = candidate_probe_sets(query, g=1, allow_full=True)
        assert ("r.a", "r.b") in candidates

    def test_single_predicate_has_no_proper_subsets(self):
        query = query_over(["r.a"])
        assert candidate_probe_sets(query, g=1) == []


class TestOptimal:
    def test_returns_cheapest(self):
        inputs = three_column_inputs()
        query = query_over(["r.a", "r.b", "r.c"])
        choice = optimal_probe_columns(inputs, query, "P+TS")
        assert choice is not None
        for columns in candidate_probe_sets(query, g=1):
            assert choice.estimate.total <= cost_p_ts(inputs, query, columns).total + 1e-9

    def test_variants(self):
        inputs = three_column_inputs()
        query = query_over(["r.a", "r.b", "r.c"])
        for variant in ("P+TS", "P+RTP", "P"):
            assert optimal_probe_columns(inputs, query, variant) is not None

    def test_unknown_variant_rejected(self):
        inputs = three_column_inputs()
        query = query_over(["r.a", "r.b", "r.c"])
        with pytest.raises(OptimizationError):
            optimal_probe_columns(inputs, query, "NOPE")

    def test_single_predicate_returns_none(self):
        inputs = make_inputs(
            tuple_count=10, stats={"r.a": (0.5, 1.0)}, distinct={"r.a": 5}
        )
        assert optimal_probe_columns(inputs, query_over(["r.a"]), "P+TS") is None


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    k=st.integers(2, 5),
)
def test_theorem_53_bound_is_lossless_for_one_correlated(seed, k):
    """Invariant 7: bounded (<= 2-column) search matches exhaustive search
    under the 1-correlated model."""
    import random

    rng = random.Random(seed)
    columns = [f"r.c{i}" for i in range(k)]
    inputs = make_inputs(
        tuple_count=rng.randint(10, 5000),
        stats={
            column: (rng.uniform(0.0, 1.0), rng.uniform(0.0, 50.0))
            for column in columns
        },
        distinct={column: rng.randint(1, 3000) for column in columns},
        g=1,
    )
    query = query_over(columns)
    for variant in ("P+TS", "P+RTP"):
        bounded = optimal_probe_columns(inputs, query, variant, exhaustive=False)
        exhaustive = optimal_probe_columns(inputs, query, variant, exhaustive=True)
        assert bounded.estimate.total == pytest.approx(
            exhaustive.estimate.total, rel=1e-9, abs=1e-9
        ), (variant, seed)
