"""Tests for SJ1+RTP (the classic one-attribute distributed semi-join)."""

import pytest

from repro.core.joinmethods import (
    SemiJoinRtp,
    SingleColumnSemiJoinRtp,
    TupleSubstitution,
)
from repro.core.query import TextJoinPredicate, TextJoinQuery, TextSelection
from repro.errors import JoinMethodError


def q4_query():
    return TextJoinQuery(
        relation="student",
        join_predicates=(
            TextJoinPredicate("student.advisor", "author"),
            TextJoinPredicate("student.name", "author"),
        ),
    )


class TestCorrectness:
    @pytest.mark.parametrize(
        "column", ["student.advisor", "student.name", None]
    )
    def test_results_match_ts(self, tiny_context, column):
        method = SingleColumnSemiJoinRtp(column)
        sj1 = method.execute(q4_query(), tiny_context)
        ts = TupleSubstitution().execute(q4_query(), tiny_context)
        assert sj1.result_keys() == ts.result_keys()

    def test_unknown_column_not_applicable(self, tiny_context):
        method = SingleColumnSemiJoinRtp("student.area")
        assert not method.applicable(q4_query(), tiny_context)
        with pytest.raises(JoinMethodError):
            method.execute(q4_query(), tiny_context)

    def test_name_rendering(self):
        assert SingleColumnSemiJoinRtp().name == "SJ1+RTP"
        assert (
            SingleColumnSemiJoinRtp("student.advisor").name
            == "SJ1(advisor)+RTP"
        )


class TestTradeoff:
    def test_fetches_at_least_full_conjunct_variant(self, tiny_context):
        """SJ1 fetches documents matching ONE predicate — a superset of the
        full-conjunct fetch, hence >= short-form transmission."""
        query = q4_query()
        sj1 = SingleColumnSemiJoinRtp("student.advisor").execute(
            query, tiny_context
        )
        full = SemiJoinRtp().execute(query, tiny_context)
        assert sj1.cost.short_documents >= full.cost.short_documents
        assert sj1.result_keys() == full.result_keys()

    def test_fewer_terms_per_batch(self, tiny_context):
        """With k=2 predicates and a tight term limit, SJ1 needs fewer
        invocations than the full-conjunct variant."""
        from repro.core.joinmethods.base import JoinContext
        from repro.gateway.client import TextClient
        from repro.textsys.server import BooleanTextServer

        server = BooleanTextServer(
            tiny_context.client.server.store, term_limit=2
        )
        context = JoinContext(tiny_context.catalog, TextClient(server))
        query = q4_query()
        sj1 = SingleColumnSemiJoinRtp("student.advisor").execute(query, context)
        full = SemiJoinRtp().execute(query, context)
        assert sj1.cost.searches < full.cost.searches
        assert sj1.result_keys() == full.result_keys()

    def test_selection_included_in_fetch(self, tiny_context):
        query = TextJoinQuery(
            relation="student",
            join_predicates=(TextJoinPredicate("student.name", "author"),),
            text_selections=(TextSelection("belief update", "title"),),
        )
        sj1 = SingleColumnSemiJoinRtp().execute(query, tiny_context)
        ts = TupleSubstitution().execute(query, tiny_context)
        assert sj1.result_keys() == ts.result_keys()
