"""Unit tests for each foreign-join method on the tiny fixture.

Expected join on the tiny corpus for the Q1-shaped query (AI students x
'belief update' titles, name in author): radhika↔d1 and smith↔d3.
"""

import pytest

from repro.core.joinmethods import (
    ProbeRtp,
    ProbeSemiJoin,
    ProbeTupleSubstitution,
    RelationalTextProcessing,
    SemiJoin,
    SemiJoinRtp,
    TupleSubstitution,
    batch_conjuncts,
)
from repro.core.query import (
    ResultShape,
    TextJoinPredicate,
    TextJoinQuery,
    TextSelection,
)
from repro.errors import JoinMethodError, PlanError
from repro.relational.expressions import ColumnRef, Comparison, Literal
from repro.textsys.query import TermQuery


def q1_query(**overrides):
    base = dict(
        relation="student",
        join_predicates=(TextJoinPredicate("student.name", "author"),),
        text_selections=(TextSelection("belief update", "title"),),
        relation_predicate=Comparison("=", ColumnRef("student.area"), Literal("AI")),
    )
    base.update(overrides)
    return TextJoinQuery(**base)


def q4_query(**overrides):
    base = dict(
        relation="student",
        join_predicates=(
            TextJoinPredicate("student.advisor", "author"),
            TextJoinPredicate("student.name", "author"),
        ),
    )
    base.update(overrides)
    return TextJoinQuery(**base)


EXPECTED_Q1 = {
    (("radhika", "AI", 4, "garcia"), "d1"),
    (("smith", "AI", 4, "ullman"), "d3"),
}


class TestTupleSubstitution:
    def test_results(self, tiny_context):
        execution = TupleSubstitution().execute(q1_query(), tiny_context)
        assert execution.result_keys() == EXPECTED_Q1

    def test_one_search_per_distinct_tuple(self, tiny_context):
        TupleSubstitution().execute(q1_query(), tiny_context)
        # 3 AI students with distinct names -> 3 searches.
        assert tiny_context.client.ledger.searches == 3

    def test_naive_variant_equivalent(self, tiny_context):
        distinct = TupleSubstitution(True).execute(q1_query(), tiny_context)
        naive = TupleSubstitution(False).execute(q1_query(), tiny_context)
        assert distinct.result_keys() == naive.result_keys()

    def test_universally_applicable(self, tiny_context):
        assert TupleSubstitution().applicable(q1_query(), tiny_context)
        assert TupleSubstitution().applicable(q4_query(), tiny_context)


class TestRtp:
    def test_results(self, tiny_context):
        execution = RelationalTextProcessing().execute(q1_query(), tiny_context)
        assert execution.result_keys() == EXPECTED_Q1

    def test_single_invocation(self, tiny_context):
        RelationalTextProcessing().execute(q1_query(), tiny_context)
        assert tiny_context.client.ledger.searches == 1

    def test_requires_selections(self, tiny_context):
        method = RelationalTextProcessing()
        assert not method.applicable(q4_query(), tiny_context)
        with pytest.raises(JoinMethodError):
            method.execute(q4_query(), tiny_context)

    def test_rtp_charge_proportional_to_docs_times_tuples(self, tiny_context):
        RelationalTextProcessing().execute(q1_query(), tiny_context)
        # 2 'belief update' docs x 3 AI students.
        assert tiny_context.client.ledger.rtp_documents == 2 * 3


class TestSemiJoin:
    def test_docids_only(self, tiny_context):
        query = q1_query(shape=ResultShape.DOCIDS)
        execution = SemiJoin().execute(query, tiny_context)
        assert set(execution.docids) == {"d1", "d3"}

    def test_not_applicable_to_pairs(self, tiny_context):
        assert not SemiJoin().applicable(q1_query(), tiny_context)

    def test_single_batched_invocation(self, tiny_context):
        SemiJoin().execute(q1_query(shape=ResultShape.DOCIDS), tiny_context)
        assert tiny_context.client.ledger.searches == 1

    def test_sj_rtp_full_join(self, tiny_context):
        execution = SemiJoinRtp().execute(q1_query(), tiny_context)
        assert execution.result_keys() == EXPECTED_Q1

    def test_sj_rtp_without_selections(self, tiny_context):
        """SJ+RTP works even with no text selections (unlike RTP)."""
        execution = SemiJoinRtp().execute(q4_query(), tiny_context)
        # radhika's advisor garcia co-authors d1 with radhika.
        assert {key[1] for key in execution.result_keys()} == {"d1"}


class TestBatchConjuncts:
    def conjuncts(self, n):
        return [TermQuery("author", f"name{i}") for i in range(n)]

    def test_single_batch(self):
        batches = batch_conjuncts(self.conjuncts(5), 0, 70)
        assert len(batches) == 1

    def test_splits_on_capacity(self):
        batches = batch_conjuncts(self.conjuncts(10), 0, 4)
        assert [len(b) for b in batches] == [4, 4, 2]

    def test_selection_terms_reduce_capacity(self):
        batches = batch_conjuncts(self.conjuncts(10), 2, 4)
        assert [len(b) for b in batches] == [2, 2, 2, 2, 2]

    def test_selection_fills_limit_raises(self):
        with pytest.raises(JoinMethodError):
            batch_conjuncts(self.conjuncts(1), 70, 70)

    def test_oversized_conjunct_raises(self):
        from repro.textsys.query import and_all

        big = and_all([TermQuery("author", f"w{i}") for i in range(5)])
        with pytest.raises(JoinMethodError):
            batch_conjuncts([big], 0, 4)


class TestProbeTupleSubstitution:
    def test_results_match_ts(self, tiny_context):
        query = q4_query()
        p_ts = ProbeTupleSubstitution(("student.advisor",)).execute(
            query, tiny_context
        )
        ts = TupleSubstitution().execute(query, tiny_context)
        assert p_ts.result_keys() == ts.result_keys()

    def test_probe_columns_must_be_join_columns(self, tiny_context):
        method = ProbeTupleSubstitution(("student.area",))
        assert not method.applicable(q4_query(), tiny_context)

    def test_probe_columns_must_be_nonempty(self, tiny_context):
        assert not ProbeTupleSubstitution(()).applicable(q4_query(), tiny_context)

    def test_failed_probe_prunes_group(self, tiny_context):
        """Students of 'ullman' never probe twice: one probe covers both."""
        query = q4_query()
        ProbeTupleSubstitution(
            ("student.advisor",), probe_first=True
        ).execute(query, tiny_context)
        # probe-first: 2 advisor probes (garcia: success, ullman: fail);
        # garcia has 3 students -> 3 full searches; ullman's 2 pruned.
        assert tiny_context.client.ledger.searches == 2 + 3

    def test_paper_order_full_query_first(self, tiny_context):
        query = q4_query()
        ProbeTupleSubstitution(
            ("student.advisor",), probe_first=False
        ).execute(query, tiny_context)
        # full-first: garcia students send 3 fulls (first succeeds -> probe
        # cached success); ullman: first student full fails -> probe fails
        # -> second student pruned.  Total = 3 + 1 + 1 probe = 5.
        assert tiny_context.client.ledger.searches == 5


class TestProbeRtp:
    def test_results_match_ts(self, tiny_context):
        query = q4_query()
        p_rtp = ProbeRtp(("student.advisor",)).execute(query, tiny_context)
        ts = TupleSubstitution().execute(query, tiny_context)
        assert p_rtp.result_keys() == ts.result_keys()

    def test_one_probe_per_group(self, tiny_context):
        ProbeRtp(("student.advisor",)).execute(q4_query(), tiny_context)
        assert tiny_context.client.ledger.searches == 2  # garcia, ullman

    def test_fetch_cap_validated(self, tiny_context):
        with pytest.raises(PlanError):
            ProbeRtp(("student.advisor",), fetch_cap=0)

    def test_fetch_cap_triggers(self, tiny_context):
        # Probing on name fetches one document per student; the second
        # successful probe pushes the total past the cap of 1.
        method = ProbeRtp(("student.name",), fetch_cap=1)
        with pytest.raises(JoinMethodError, match="cap"):
            method.execute(q4_query(), tiny_context)

    def test_probe_covering_all_columns_needs_no_rtp_filter(self, tiny_context):
        query = q4_query()
        full = ProbeRtp(("student.advisor", "student.name")).execute(
            query, tiny_context
        )
        ts = TupleSubstitution().execute(query, tiny_context)
        assert full.result_keys() == ts.result_keys()


class TestProbeSemiJoin:
    def test_exact_semijoin_with_all_columns(self, tiny_context):
        query = q4_query(shape=ResultShape.TUPLES)
        probe = ProbeSemiJoin().execute(query, tiny_context)
        ts = TupleSubstitution().execute(query, tiny_context)
        assert probe.result_keys() == ts.result_keys()

    def test_reducer_is_sound_overapproximation(self, tiny_context):
        query = q4_query(shape=ResultShape.TUPLES)
        reduced = ProbeSemiJoin(("student.advisor",)).execute(query, tiny_context)
        exact = TupleSubstitution().execute(query, tiny_context)
        assert exact.result_keys() <= reduced.result_keys()

    def test_only_tuples_shape(self, tiny_context):
        assert not ProbeSemiJoin().applicable(q4_query(), tiny_context)

    def test_is_exact_for(self):
        query = q4_query(shape=ResultShape.TUPLES)
        assert ProbeSemiJoin().is_exact_for(query)
        assert ProbeSemiJoin(
            ("student.advisor", "student.name")
        ).is_exact_for(query)
        assert not ProbeSemiJoin(("student.advisor",)).is_exact_for(query)


class TestNullHandling:
    def test_null_join_values_never_join_or_search(self, tiny_context):
        table = tiny_context.catalog.table("student")
        table.insert([None, "AI", 4, "garcia"])
        query = q1_query()
        execution = TupleSubstitution().execute(query, tiny_context)
        assert execution.result_keys() == EXPECTED_Q1
        # Only the 3 non-NULL AI names were searched.
        assert tiny_context.client.ledger.searches == 3


class TestLongForm:
    def test_long_form_retrieves_distinct_documents(self, tiny_context):
        query = q1_query(long_form=True)
        execution = TupleSubstitution().execute(query, tiny_context)
        assert tiny_context.client.ledger.long_documents == 2
        for pair in execution.pairs:
            assert "abstract" in pair.document.fields

    def test_short_form_skips_retrieval(self, tiny_context):
        TupleSubstitution().execute(q1_query(long_form=False), tiny_context)
        assert tiny_context.client.ledger.long_documents == 0


class TestGroupedProbeRefinement:
    """Section 3.3: with the relation grouped on the probing columns, a
    probe is sent only when another substitution shares the probe key."""

    def _grouped_world(self, tiny_context):
        # Add a second AI student advised by 'nobody' so one fail probe
        # key is a singleton and another (ullman's) is shared.
        table = tiny_context.catalog.table("student")
        table.insert(["pham", "AI", 4, "nobody"])
        return tiny_context

    def test_singleton_fail_groups_send_no_probe(self, tiny_context):
        context = self._grouped_world(tiny_context)
        query = q4_query()
        plain = ProbeTupleSubstitution(
            ("student.advisor",), probe_first=False
        ).execute(query, context)
        refined = ProbeTupleSubstitution(
            ("student.advisor",), probe_first=False, exploit_grouping=True
        ).execute(query, context)
        assert plain.result_keys() == refined.result_keys()
        # 'nobody' advises exactly one student: its failed full query is
        # final and the refinement saves that probe.
        assert refined.cost.searches == plain.cost.searches - 1

    def test_shared_fail_groups_still_probe(self, tiny_context):
        context = self._grouped_world(tiny_context)
        query = q4_query()
        refined = ProbeTupleSubstitution(
            ("student.advisor",), probe_first=False, exploit_grouping=True
        ).execute(query, context)
        ts = TupleSubstitution().execute(query, context)
        assert refined.result_keys() == ts.result_keys()
