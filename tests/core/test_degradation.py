"""Degradation hooks in the execution layer.

When the remote text source is unhealthy, the SJ-family methods shrink
their OR-batch capacity (smaller retry units) and the executor swaps an
annotated SJ-family method for plain TS.  All adaptations must keep the
answers identical — only the access pattern changes.
"""


from repro.core.executor import execute_plan
from repro.core.joinmethods import SemiJoinRtp
from repro.core.joinmethods.base import JoinContext, effective_term_limit
from repro.core.optimizer.multiquery import MultiJoinQuery
from repro.core.optimizer.plan import ScanNode, TextJoinNode
from repro.core.query import ResultShape, TextJoinPredicate, TextJoinQuery
from repro.gateway.client import TextClient
from repro.remote.resilience import DegradationPolicy
from repro.textsys.server import BooleanTextServer


def sj_query():
    return TextJoinQuery(
        relation="student",
        join_predicates=(TextJoinPredicate("student.name", "author"),),
        shape=ResultShape.PAIRS,
    )


class TestEffectiveTermLimit:
    def test_no_policy_uses_the_server_limit(self, tiny_context):
        assert effective_term_limit(tiny_context) == tiny_context.client.term_limit

    def test_degraded_policy_shrinks_the_budget(self, tiny_catalog, tiny_store):
        server = BooleanTextServer(tiny_store, term_limit=40)
        context = JoinContext(
            tiny_catalog,
            TextClient(server),
            degradation=DegradationPolicy(
                force_degraded=True, shrink_factor=0.5, min_term_budget=4
            ),
        )
        assert effective_term_limit(context) == 20
        assert context.degradation.shrink_applications == 1


class TestSemiJoinUnderDegradation:
    def test_shrunk_batches_same_answers_more_searches(self, tiny_catalog, tiny_store):
        healthy = JoinContext(tiny_catalog, TextClient(BooleanTextServer(tiny_store)))
        baseline = SemiJoinRtp().execute(sj_query(), healthy)
        assert healthy.client.ledger.searches == 1  # all conjuncts fit one OR

        degraded = JoinContext(
            tiny_catalog,
            TextClient(BooleanTextServer(tiny_store)),
            degradation=DegradationPolicy(
                force_degraded=True, shrink_factor=0.01, min_term_budget=2
            ),
        )
        shrunk = SemiJoinRtp().execute(sj_query(), degraded)
        assert shrunk.result_keys() == baseline.result_keys()
        # Budget of 2 terms per search -> the 5 student-name conjuncts
        # need 3 OR-batches instead of 1.
        assert degraded.client.ledger.searches == 3
        assert degraded.degradation.shrink_applications >= 1


class TestExecutorFallback:
    def plan_and_query(self):
        predicate = TextJoinPredicate("student.name", "author")
        query = MultiJoinQuery(
            relations=("student",),
            text_predicates=(predicate,),
            text_source="m",
        )
        plan = TextJoinNode(
            child=ScanNode(relation="student"),
            method=SemiJoinRtp(),
            available_predicates=(predicate,),
        )
        return plan, query

    def test_sj_plan_falls_back_to_ts_when_degraded(self, tiny_catalog, tiny_store):
        plan, query = self.plan_and_query()
        healthy = JoinContext(tiny_catalog, TextClient(BooleanTextServer(tiny_store)))
        baseline = execute_plan(plan, query, healthy)
        assert healthy.client.ledger.searches == 1  # one OR-batched SJ search

        degraded = JoinContext(
            tiny_catalog,
            TextClient(BooleanTextServer(tiny_store)),
            degradation=DegradationPolicy(force_degraded=True),
        )
        fallen_back = execute_plan(plan, query, degraded)
        assert fallen_back.result_keys() == baseline.result_keys()
        assert degraded.degradation.fallback_applications == 1
        # TS pays one search per distinct joining name instead.
        assert degraded.client.ledger.searches == 5

    def test_healthy_policy_changes_nothing(self, tiny_catalog, tiny_store):
        plan, query = self.plan_and_query()
        context = JoinContext(
            tiny_catalog,
            TextClient(BooleanTextServer(tiny_store)),
            degradation=DegradationPolicy(),  # attached but healthy
        )
        execute_plan(plan, query, context)
        assert context.client.ledger.searches == 1
        assert context.degradation.fallback_applications == 0

    def test_fallback_respects_opt_out(self, tiny_catalog, tiny_store):
        plan, query = self.plan_and_query()
        context = JoinContext(
            tiny_catalog,
            TextClient(BooleanTextServer(tiny_store)),
            degradation=DegradationPolicy(force_degraded=True, fallback_to_ts=False),
        )
        execute_plan(plan, query, context)
        # Still the SJ method (one OR search), though shrink may apply.
        assert context.degradation.fallback_applications == 0
