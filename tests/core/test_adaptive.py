"""Tests for runtime re-optimization (the [CDY] fetch guard + fallback)."""

import pytest

from repro.core.adaptive import execute_adaptively
from repro.core.inputs import build_cost_inputs
from repro.core.joinmethods import TupleSubstitution
from repro.core.query import TextJoinPredicate, TextJoinQuery
from repro.errors import OptimizationError


def q4_query():
    return TextJoinQuery(
        relation="student",
        join_predicates=(
            TextJoinPredicate("student.advisor", "author"),
            TextJoinPredicate("student.name", "author"),
        ),
    )


class TestHappyPath:
    def test_executes_best_choice(self, tiny_context):
        query = q4_query()
        inputs = build_cost_inputs(query, tiny_context)
        adaptive = execute_adaptively(query, tiny_context, inputs)
        assert not adaptive.fell_back
        assert len(adaptive.attempts) == 1
        assert not adaptive.attempts[0].aborted
        reference = TupleSubstitution().execute(query, tiny_context)
        assert adaptive.execution.result_keys() == reference.result_keys()

    def test_total_cost_covers_run(self, tiny_context):
        query = q4_query()
        inputs = build_cost_inputs(query, tiny_context)
        adaptive = execute_adaptively(query, tiny_context, inputs)
        assert adaptive.total_cost >= adaptive.execution.cost.total


class TestMisestimates:
    def _lying_inputs(self, context, query):
        """Statistics that wildly underestimate the fetch volume."""
        from repro.gateway.statistics import (
            PredicateStatistics,
            TextStatisticsRegistry,
        )

        registry = TextStatisticsRegistry()
        # Claim advisors match nothing-ish: tiny fanout, tiny selectivity.
        registry.put(
            PredicateStatistics("student.advisor", "author", 0.01, 0.001)
        )
        registry.put(PredicateStatistics("student.name", "author", 0.01, 0.001))
        return build_cost_inputs(query, context, registry=registry)

    def test_guard_aborts_and_falls_back(self, tiny_context):
        query = q4_query()
        inputs = self._lying_inputs(tiny_context, query)
        adaptive = execute_adaptively(
            query, tiny_context, inputs, safety_factor=0.001
        )
        # Under a near-zero safety factor, any fetch trips the P+RTP guard;
        # execution must still complete via a fallback method.
        reference = TupleSubstitution().execute(query, tiny_context)
        assert adaptive.execution.result_keys() == reference.result_keys()
        if adaptive.fell_back:
            assert adaptive.attempts[0].aborted
            assert "cap" in (adaptive.attempts[0].reason or "")

    def test_fallback_cost_includes_wasted_work(self, tiny_context):
        query = q4_query()
        inputs = self._lying_inputs(tiny_context, query)
        adaptive = execute_adaptively(
            query, tiny_context, inputs, safety_factor=0.001
        )
        assert adaptive.total_cost >= adaptive.execution.cost.total


class TestValidation:
    def test_bad_safety_factor(self, tiny_context):
        query = q4_query()
        inputs = build_cost_inputs(query, tiny_context)
        with pytest.raises(OptimizationError):
            execute_adaptively(query, tiny_context, inputs, safety_factor=0)
