"""Tests for the B+TS join method and its cost formula."""

import math

import pytest

from repro.bench.harness import make_inputs
from repro.core.joinmethods import (
    BatchedTupleSubstitution,
    TupleSubstitution,
    cost_batched_ts,
)
from repro.core.joinmethods.base import JoinContext
from repro.core.costmodel import cost_ts
from repro.core.query import TextJoinPredicate, TextJoinQuery, TextSelection
from repro.errors import JoinMethodError
from repro.gateway.client import TextClient
from repro.textsys.batching import BatchingTextServer


def query():
    return TextJoinQuery(
        relation="student",
        join_predicates=(TextJoinPredicate("student.name", "author"),),
        text_selections=(TextSelection("belief update", "title"),),
    )


@pytest.fixture
def batched_context(tiny_catalog, tiny_server):
    return JoinContext(
        tiny_catalog, TextClient(BatchingTextServer(tiny_server, batch_limit=3))
    )


class TestExecution:
    def test_same_results_as_ts(self, batched_context):
        b_ts = BatchedTupleSubstitution().execute(query(), batched_context)
        ts = TupleSubstitution().execute(query(), batched_context)
        assert b_ts.result_keys() == ts.result_keys()

    def test_invocations_divided_by_batch_size(self, batched_context):
        before = batched_context.client.ledger.snapshot()
        BatchedTupleSubstitution().execute(query(), batched_context)
        delta = batched_context.client.ledger.diff(before)
        # 5 distinct students over batches of 3 -> 2 invocations.
        assert delta.searches == 2

    def test_explicit_batch_limit(self, batched_context):
        before = batched_context.client.ledger.snapshot()
        BatchedTupleSubstitution(batch_limit=1).execute(query(), batched_context)
        delta = batched_context.client.ledger.diff(before)
        assert delta.searches == 5

    def test_requires_batching_server(self, tiny_context):
        method = BatchedTupleSubstitution()
        assert not method.applicable(query(), tiny_context)
        with pytest.raises(JoinMethodError):
            method.execute(query(), tiny_context)

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            BatchedTupleSubstitution(batch_limit=0)


class TestCostFormula:
    def test_only_invocations_change(self):
        inputs = make_inputs(
            tuple_count=100,
            stats={"r.x": (0.2, 2.0)},
            distinct={"r.x": 100},
        )
        q = TextJoinQuery(
            relation="r",
            join_predicates=(TextJoinPredicate("r.x", "title"),),
        )
        plain = cost_ts(inputs, q)
        batched = cost_batched_ts(inputs, q, batch_limit=10)
        assert batched.searches == math.ceil(100 / 10)
        assert batched.invocation == pytest.approx(plain.invocation / 10)
        assert batched.processing == pytest.approx(plain.processing)
        assert batched.transmission_short == pytest.approx(plain.transmission_short)
        assert batched.total < plain.total


class TestOptimizerIntegration:
    def test_optimizer_considers_bts_with_batching_server(self, batched_context):
        from repro.core.inputs import build_cost_inputs
        from repro.core.optimizer.single_join import enumerate_method_choices

        q = query()
        inputs = build_cost_inputs(q, batched_context)
        assert inputs.batch_limit == 3
        names = {choice.estimate.method for choice in enumerate_method_choices(q, inputs)}
        assert "B+TS" in names

    def test_plain_server_excludes_bts(self, tiny_context):
        from repro.core.inputs import build_cost_inputs
        from repro.core.optimizer.single_join import enumerate_method_choices

        q = query()
        inputs = build_cost_inputs(q, tiny_context)
        assert inputs.batch_limit is None
        names = {choice.estimate.method for choice in enumerate_method_choices(q, inputs)}
        assert "B+TS" not in names

    def test_bts_dominates_ts_in_ranking(self, batched_context):
        from repro.core.inputs import build_cost_inputs
        from repro.core.optimizer.single_join import enumerate_method_choices

        q = query()
        inputs = build_cost_inputs(q, batched_context)
        by_name = {
            choice.estimate.method: choice.estimate.total
            for choice in enumerate_method_choices(q, inputs)
        }
        assert by_name["B+TS"] <= by_name["TS"]
