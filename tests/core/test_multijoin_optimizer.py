"""Tests for the multi-join estimator, enumerator and executor
(DESIGN.md invariants 8 and 9)."""

import pytest

from repro.core.executor import execute_plan
from repro.core.joinmethods.base import JoinContext
from repro.core.optimizer.enumerate import optimize_multijoin
from repro.core.optimizer.estimator import PlanEstimator
from repro.core.optimizer.multiquery import (
    MultiJoinQuery,
    RelationalJoinPredicate,
)
from repro.core.optimizer.plan import (
    JoinNode,
    ProbeNode,
    ScanNode,
    TextScanNode,
)
from repro.core.query import TextJoinPredicate, TextSelection
from repro.errors import OptimizationError
from repro.gateway.client import TextClient
from repro.relational.catalog import Catalog
from repro.relational.expressions import ColumnRef, Comparison
from repro.relational.schema import Schema
from repro.relational.types import DataType
from repro.textsys.documents import DocumentStore
from repro.textsys.server import BooleanTextServer


@pytest.fixture
def world():
    """Two relations + a small corpus with known coauthorships."""
    catalog = Catalog()
    student = catalog.create_table(
        "student",
        Schema.of(("name", DataType.VARCHAR), ("dept", DataType.VARCHAR)),
    )
    student.insert_many(
        [["radhika", "cs"], ["gravano", "cs"], ["kao", "ee"], ["smith", "cs"]]
    )
    faculty = catalog.create_table(
        "faculty",
        Schema.of(("name", DataType.VARCHAR), ("dept", DataType.VARCHAR)),
    )
    faculty.insert_many([["garcia", "ee"], ["ullman", "cs"], ["jones", "me"]])

    store = DocumentStore(
        ["title", "author", "year"], short_fields=["title", "author", "year"]
    )
    store.add_record("d1", title="Joint", author="radhika garcia", year="may 1993")
    store.add_record("d2", title="Solo", author="gravano", year="may 1993")
    store.add_record("d3", title="Pair", author="smith jones", year="may 1993")
    store.add_record("d4", title="Old", author="kao garcia", year="june 1991")
    server = BooleanTextServer(store)
    return catalog, server


@pytest.fixture
def q5():
    return MultiJoinQuery(
        relations=("student", "faculty"),
        text_predicates=(
            TextJoinPredicate("student.name", "author"),
            TextJoinPredicate("faculty.name", "author"),
        ),
        text_selections=(TextSelection("may 1993", "year"),),
        join_predicates=(
            RelationalJoinPredicate(
                Comparison("!=", ColumnRef("faculty.dept"), ColumnRef("student.dept")),
                ("faculty", "student"),
            ),
        ),
        text_source="mercury",
    )


def fresh_context(world):
    catalog, server = world
    return JoinContext(catalog, TextClient(server))


#: Q5's true answer on the fixture: radhika(cs)+garcia(ee) via d1,
#: smith(cs)+jones(me) via d3.
EXPECTED_NAMES = {("radhika", "garcia"), ("smith", "jones")}


def result_names(execution):
    return {
        (row["student.name"], row["faculty.name"]) for row in execution.rows
    }


class TestEstimator:
    def test_scan_cardinalities_exact(self, world, q5):
        estimator = PlanEstimator(q5, fresh_context(world))
        scan = ScanNode(relation="student")
        estimator.annotate(scan)
        assert scan.estimated_rows == 4

    def test_probe_reduces_rows(self, world, q5):
        estimator = PlanEstimator(q5, fresh_context(world))
        scan = ScanNode(relation="student")
        probe = ProbeNode(
            child=scan,
            probe_columns=("student.name",),
            probe_predicates=q5.text_predicates_of("student"),
            selections=q5.text_selections,
        )
        estimator.annotate(probe)
        # All 4 students author something: s = 1 -> no reduction.
        assert probe.estimated_rows == pytest.approx(scan.estimated_rows)
        assert probe.estimated_cost > 0

    def test_join_cardinality_uses_selectivity(self, world, q5):
        estimator = PlanEstimator(q5, fresh_context(world))
        join = JoinNode(
            left=ScanNode(relation="student"),
            right=ScanNode(relation="faculty"),
            relational_predicates=q5.join_predicates,
        )
        estimator.annotate(join)
        assert 0 < join.estimated_rows < 12

    def test_text_scan_priced_by_selection(self, world, q5):
        estimator = PlanEstimator(q5, fresh_context(world))
        node = TextScanNode(selections=q5.text_selections)
        estimator.annotate(node)
        assert node.estimated_rows == 3  # may-1993 documents
        assert node.estimated_cost > 3.0  # at least one invocation


class TestEnumerator:
    def test_spaces_nest_by_cost(self, world, q5):
        costs = {}
        for space in ("traditional", "prl", "extended"):
            estimator = PlanEstimator(q5, fresh_context(world))
            costs[space] = optimize_multijoin(
                q5, estimator, space=space
            ).estimated_cost
        assert costs["prl"] <= costs["traditional"] + 1e-9
        assert costs["extended"] <= costs["prl"] + 1e-9

    def test_traditional_has_no_probes_or_text_scans(self, world, q5):
        estimator = PlanEstimator(q5, fresh_context(world))
        plan = optimize_multijoin(q5, estimator, space="traditional").plan
        text = plan.describe()
        assert "Probe(" not in text
        assert "TextScan(" not in text

    def test_unknown_space_rejected(self, world, q5):
        estimator = PlanEstimator(q5, fresh_context(world))
        with pytest.raises(OptimizationError):
            optimize_multijoin(q5, estimator, space="bogus")

    def test_counters_populated(self, world, q5):
        estimator = PlanEstimator(q5, fresh_context(world))
        optimized = optimize_multijoin(q5, estimator)
        assert optimized.join_tasks > 0
        assert optimized.plans_considered > 0
        # size>=2 subsets of {student, faculty, TEXT}: 3 pairs + 1 triple.
        assert optimized.subsets_enumerated == 4

    def test_single_relation_query(self, world):
        query = MultiJoinQuery(
            relations=("student",),
            text_predicates=(TextJoinPredicate("student.name", "author"),),
            text_source="mercury",
        )
        estimator = PlanEstimator(query, fresh_context(world))
        optimized = optimize_multijoin(query, estimator)
        execution = execute_plan(optimized.plan, query, fresh_context(world))
        assert len(execution.rows) == 4  # every student authored something


class TestExecutor:
    @pytest.mark.parametrize("space", ["traditional", "prl", "extended"])
    def test_all_spaces_compute_q5(self, world, q5, space):
        estimator = PlanEstimator(q5, fresh_context(world))
        optimized = optimize_multijoin(q5, estimator, space=space)
        execution = execute_plan(optimized.plan, q5, fresh_context(world))
        assert result_names(execution) == EXPECTED_NAMES

    def test_matches_reference_nested_loop(self, world, q5):
        """Invariant 9: plan execution equals brute-force evaluation."""
        catalog, server = world
        expected = set()
        for srow in catalog.table("student").scan():
            for frow in catalog.table("faculty").scan():
                if frow["faculty.dept"] == srow["student.dept"]:
                    continue
                for document in server.store:
                    from repro.core.textmatch import value_matches_field

                    if (
                        value_matches_field("may 1993", document.field("year"))
                        and value_matches_field(
                            srow["student.name"], document.field("author")
                        )
                        and value_matches_field(
                            frow["faculty.name"], document.field("author")
                        )
                    ):
                        expected.add(
                            (srow["student.name"], frow["faculty.name"])
                        )
        estimator = PlanEstimator(q5, fresh_context(world))
        optimized = optimize_multijoin(q5, estimator)
        execution = execute_plan(optimized.plan, q5, fresh_context(world))
        assert result_names(execution) == expected

    def test_document_columns_in_output(self, world, q5):
        estimator = PlanEstimator(q5, fresh_context(world))
        optimized = optimize_multijoin(q5, estimator)
        execution = execute_plan(optimized.plan, q5, fresh_context(world))
        names = execution.schema.names()
        assert "mercury.docid" in names
        assert "mercury.author" in names

    def test_cost_metered(self, world, q5):
        estimator = PlanEstimator(q5, fresh_context(world))
        optimized = optimize_multijoin(q5, estimator)
        execution = execute_plan(optimized.plan, q5, fresh_context(world))
        assert execution.cost.total > 0
        assert execution.total_cost() >= execution.cost.total
