"""Unit tests for the Section 4.3 cost formulas (hand-computed checks)."""


import pytest

from repro.bench.harness import make_inputs
from repro.core.costmodel import (
    SelectionStatistics,
    cost_p_rtp,
    cost_p_ts,
    cost_probe_phase,
    cost_probe_semijoin,
    cost_rtp,
    cost_sj,
    cost_sj_rtp,
    cost_ts,
)
from repro.core.query import ResultShape, TextJoinPredicate, TextJoinQuery, TextSelection
from repro.errors import StatisticsError
from repro.gateway.costs import CostConstants

#: Clean constants for hand computation.
CONSTANTS = CostConstants(
    invocation=1.0,
    per_posting=0.01,
    short_form=0.1,
    long_form=10.0,
    rtp_per_document=0.001,
)

D = 1000


def inputs(**overrides):
    base = dict(
        tuple_count=100,
        stats={"r.x": (0.2, 2.0), "r.y": (0.5, 4.0)},
        distinct={"r.x": 10, "r.y": 50},
        document_count=D,
        term_limit=70,
        g=1,
        constants=CONSTANTS,
    )
    base.update(overrides)
    return make_inputs(**base)


def query(selections=(), shape=ResultShape.PAIRS, long_form=False):
    return TextJoinQuery(
        relation="r",
        join_predicates=(
            TextJoinPredicate("r.x", "title"),
            TextJoinPredicate("r.y", "author"),
        ),
        text_selections=selections,
        shape=shape,
        long_form=long_form,
    )


class TestExpressions:
    def test_distinct_exact_and_fallback(self):
        qi = inputs()
        assert qi.distinct(["r.x"]) == 10
        # fallback: min(prod N_i, N) = min(10*50, 100) = 100
        assert qi.distinct(["r.x", "r.y"]) == 100

    def test_search_fanout_one_correlated_is_min(self):
        qi = inputs()
        assert qi.search_fanout(["r.x", "r.y"]) == pytest.approx(2.0)

    def test_postings_per_search_sums_lists(self):
        qi = inputs()
        assert qi.postings_per_search(["r.x", "r.y"]) == pytest.approx(6.0)

    def test_total_documents_v(self):
        qi = inputs()
        assert qi.total_documents(10, ["r.x"]) == pytest.approx(20.0)

    def test_distinct_documents_u(self):
        qi = inputs()
        expected = D * (1 - (1 - 2.0 / D) ** 10)
        assert qi.distinct_documents(10, ["r.x"]) == pytest.approx(expected)
        assert qi.distinct_documents(0, ["r.x"]) == 0.0

    def test_u_bounded_by_v_and_d(self):
        qi = inputs()
        for n in (1, 10, 1000, 100000):
            u = qi.distinct_documents(n, ["r.x"])
            assert u <= qi.total_documents(n, ["r.x"]) + 1e-9
            assert u <= D

    def test_probe_success_selectivity(self):
        qi = inputs()
        assert qi.probe_success(["r.x"]) == pytest.approx(0.2)
        assert qi.probe_success(["r.x", "r.y"]) == pytest.approx(0.2)  # g=1

    def test_empty_selection_result_kills_probes(self):
        qi = inputs()
        qi.selection = SelectionStatistics(
            result_size=0, postings=5, term_count=1, present=True
        )
        assert qi.probe_success(["r.x"]) == 0.0

    def test_selection_caps_fanout(self):
        qi = inputs()
        qi.selection = SelectionStatistics(
            result_size=1.0, postings=5, term_count=1, present=True
        )
        assert qi.search_fanout(["r.x", "r.y"]) == pytest.approx(1.0)

    def test_missing_stats_raise(self):
        qi = inputs()
        with pytest.raises(StatisticsError):
            qi.stats_for(["r.z"])
        with pytest.raises(StatisticsError):
            qi.distinct(["r.z"])


class TestTs:
    def test_formula(self):
        qi = inputs()
        estimate = cost_ts(qi, query())
        n = 100  # N_K
        assert estimate.searches == n
        assert estimate.invocation == pytest.approx(1.0 * n)
        assert estimate.processing == pytest.approx(0.01 * n * 6.0)
        assert estimate.transmission_short == pytest.approx(0.1 * n * 2.0)
        assert estimate.transmission_long == 0.0

    def test_long_form_adds_cl_times_u(self):
        qi = inputs()
        with_long = cost_ts(qi, query(long_form=True))
        without = cost_ts(qi, query(long_form=False))
        u = qi.expected_join_documents()
        assert with_long.total - without.total == pytest.approx(10.0 * u)


class TestProbe:
    def test_probe_phase_formula(self):
        qi = inputs()
        estimate = cost_probe_phase(qi, query(), ["r.x"])
        assert estimate.invocation == pytest.approx(10.0)
        assert estimate.processing == pytest.approx(0.01 * 10 * 2.0)
        assert estimate.transmission_short == pytest.approx(0.1 * 10 * 2.0)

    def test_p_ts_composes_probe_and_survivors(self):
        qi = inputs()
        estimate = cost_p_ts(qi, query(), ["r.x"])
        probe = cost_probe_phase(qi, query(), ["r.x"])
        survivors = 100 * 0.2
        expected_sub = (
            1.0 * survivors + 0.01 * survivors * 6.0 + 0.1 * survivors * 2.0
        )
        assert estimate.total == pytest.approx(probe.total + expected_sub)
        assert estimate.method == "P(x)+TS"

    def test_probe_semijoin_is_probe_phase(self):
        qi = inputs()
        a = cost_probe_semijoin(qi, query(), ["r.x"])
        b = cost_probe_phase(qi, query(), ["r.x"])
        assert a.total == pytest.approx(b.total)


class TestRtp:
    def test_requires_selections(self):
        qi = inputs()
        with pytest.raises(StatisticsError):
            cost_rtp(qi, query())

    def test_formula(self):
        qi = inputs()
        qi.selection = SelectionStatistics(
            result_size=5.0, postings=40.0, term_count=1, present=True
        )
        estimate = cost_rtp(qi, query((TextSelection("w", "title"),)))
        assert estimate.invocation == 1.0
        assert estimate.processing == pytest.approx(0.01 * 40)
        assert estimate.transmission_short == pytest.approx(0.1 * 5)
        assert estimate.rtp == pytest.approx(0.001 * 5 * 100)


class TestSj:
    def test_batch_count(self):
        qi = inputs()
        estimate = cost_sj(qi, query(shape=ResultShape.DOCIDS))
        # N_K=100 conjuncts x 2 terms over capacity 70 -> 3 batches.
        assert estimate.searches == 3
        assert estimate.invocation == pytest.approx(3.0)

    def test_sj_rtp_adds_matching_cost(self):
        qi = inputs()
        sj = cost_sj(qi, query())
        sj_rtp = cost_sj_rtp(qi, query())
        u = qi.distinct_documents(100, ["r.x", "r.y"])
        assert sj_rtp.total - sj.total == pytest.approx(0.001 * u * 100)

    def test_selection_terms_shrink_capacity(self):
        qi = inputs(term_limit=3)
        qi.selection = SelectionStatistics(
            result_size=5.0, postings=40.0, term_count=2, present=True
        )
        with pytest.raises(StatisticsError):
            cost_sj(qi, query((TextSelection("a b", "title"),)))


class TestPRtp:
    def test_formula(self):
        qi = inputs()
        estimate = cost_p_rtp(qi, query(), ["r.x"])
        probe = cost_probe_phase(qi, query(), ["r.x"])
        fetched = 10 * 2.0
        group = 100 / 10
        assert estimate.total == pytest.approx(
            probe.total + 0.001 * fetched * group
        )

    def test_method_label(self):
        qi = inputs()
        assert cost_p_rtp(qi, query(), ["r.y"]).method == "P(y)+RTP"


class TestCostEstimateAlgebra:
    def test_plus_sums_components(self):
        qi = inputs()
        a = cost_probe_phase(qi, query(), ["r.x"])
        b = cost_probe_phase(qi, query(), ["r.y"])
        combined = a.plus(b, method="both")
        assert combined.total == pytest.approx(a.total + b.total)
        assert combined.searches == a.searches + b.searches
        assert combined.method == "both"
