"""Unit tests for the single-join optimizer (Section 5 method choice)."""

import pytest

from repro.bench.harness import make_inputs
from repro.core.costmodel import SelectionStatistics
from repro.core.inputs import build_cost_inputs
from repro.core.joinmethods import (
    ProbeRtp,
    ProbeSemiJoin,
    ProbeTupleSubstitution,
    RelationalTextProcessing,
    SemiJoin,
    SemiJoinRtp,
    TupleSubstitution,
)
from repro.core.optimizer.single_join import (
    choose_join_method,
    enumerate_method_choices,
)
from repro.core.query import (
    ResultShape,
    TextJoinPredicate,
    TextJoinQuery,
    TextSelection,
)


def two_pred_query(shape=ResultShape.PAIRS, selections=()):
    return TextJoinQuery(
        relation="r",
        join_predicates=(
            TextJoinPredicate("r.x", "title"),
            TextJoinPredicate("r.y", "author"),
        ),
        text_selections=selections,
        shape=shape,
    )


def one_pred_query(shape=ResultShape.PAIRS, selections=()):
    return TextJoinQuery(
        relation="r",
        join_predicates=(TextJoinPredicate("r.x", "title"),),
        text_selections=selections,
        shape=shape,
    )


def default_inputs(with_selection=False):
    inputs = make_inputs(
        tuple_count=100,
        stats={"r.x": (0.2, 2.0), "r.y": (0.5, 4.0)},
        distinct={"r.x": 10, "r.y": 50},
    )
    if with_selection:
        inputs.selection = SelectionStatistics(
            result_size=5.0, postings=30.0, term_count=1, present=True
        )
    return inputs


def method_types(choices):
    return {type(choice.method) for choice in choices}


class TestApplicability:
    def test_pairs_without_selections(self):
        choices = enumerate_method_choices(two_pred_query(), default_inputs())
        types = method_types(choices)
        assert TupleSubstitution in types
        assert SemiJoinRtp in types
        assert ProbeTupleSubstitution in types
        assert ProbeRtp in types
        assert RelationalTextProcessing not in types
        assert SemiJoin not in types

    def test_rtp_needs_selections(self):
        query = two_pred_query(selections=(TextSelection("w", "title"),))
        choices = enumerate_method_choices(query, default_inputs(True))
        assert RelationalTextProcessing in method_types(choices)

    def test_sj_only_for_docids(self):
        query = two_pred_query(shape=ResultShape.DOCIDS)
        choices = enumerate_method_choices(query, default_inputs())
        assert SemiJoin in method_types(choices)

    def test_probe_semijoin_for_tuples(self):
        query = two_pred_query(shape=ResultShape.TUPLES)
        choices = enumerate_method_choices(query, default_inputs())
        assert ProbeSemiJoin in method_types(choices)

    def test_no_probing_with_single_predicate(self):
        choices = enumerate_method_choices(one_pred_query(), default_inputs())
        types = method_types(choices)
        assert ProbeTupleSubstitution not in types
        assert ProbeRtp not in types


class TestRanking:
    def test_sorted_by_cost(self):
        choices = enumerate_method_choices(two_pred_query(), default_inputs())
        costs = [choice.estimate.total for choice in choices]
        assert costs == sorted(costs)

    def test_choose_returns_cheapest(self):
        inputs = default_inputs()
        query = two_pred_query()
        winner = choose_join_method(query, inputs)
        all_choices = enumerate_method_choices(query, inputs)
        assert winner.estimate.total == all_choices[0].estimate.total

    def test_probe_methods_carry_optimal_columns(self):
        choices = enumerate_method_choices(two_pred_query(), default_inputs())
        for choice in choices:
            if isinstance(choice.method, (ProbeTupleSubstitution, ProbeRtp)):
                assert set(choice.method.probe_columns) <= {"r.x", "r.y"}
                assert len(choice.method.probe_columns) >= 1


class TestScenarioWinners:
    """End-to-end: the optimizer's winner on the canonical queries matches
    the paper's Table 2 winners."""

    @pytest.mark.parametrize(
        "query_id, expected",
        [
            ("q1", "RTP"),
            ("q2", "SJ"),
            ("q3", "P(name)+TS"),
            ("q4", "P(advisor)+RTP"),
        ],
    )
    def test_winner(self, scenario, query_id, expected):
        query = scenario.query(query_id)
        inputs = build_cost_inputs(query, scenario.context())
        winner = choose_join_method(query, inputs)
        assert winner.name == expected
