"""Tests for the EXPLAIN facility."""

import pytest

from repro.core.explain import explain_query
from repro.core.inputs import build_cost_inputs
from repro.core.query import TextJoinPredicate, TextJoinQuery, TextSelection


@pytest.fixture
def report(tiny_context):
    query = TextJoinQuery(
        relation="student",
        join_predicates=(
            TextJoinPredicate("student.advisor", "author"),
            TextJoinPredicate("student.name", "author"),
        ),
        text_selections=(TextSelection("belief update", "title"),),
    )
    inputs = build_cost_inputs(query, tiny_context)
    return explain_query(query, inputs)


def test_reports_environment(report):
    assert "D=4 documents" in report
    assert "M=70 terms/search" in report
    assert "N=5 tuples" in report


def test_reports_predicate_statistics(report):
    assert "student.advisor" in report
    assert "student.name" in report
    assert "s_i" in report and "f_i" in report and "N_i" in report


def test_reports_selection_statistics(report):
    assert "E_sel=2 documents" in report


def test_ranks_every_applicable_method(report):
    for method in ("TS", "RTP", "SJ+RTP"):
        assert method in report


def test_names_the_winner(report):
    assert "Chosen: " in report
    winner_line = [line for line in report.splitlines() if line.startswith("Chosen")]
    assert len(winner_line) == 1


def test_cost_components_present(report):
    for component in ("invoke", "process", "short", "long", "rtp"):
        assert component in report
