"""Edge-case tests for the plan executor: document pseudo-rows and the
short-to-long-form upgrade path."""

import pytest

from repro.core.executor import document_row, document_schema, execute_plan
from repro.core.joinmethods.base import JoinContext
from repro.core.optimizer.enumerate import optimize_multijoin
from repro.core.optimizer.estimator import PlanEstimator
from repro.core.optimizer.multiquery import MultiJoinQuery
from repro.core.query import TextJoinPredicate, TextSelection
from repro.gateway.client import TextClient
from repro.relational.catalog import Catalog
from repro.relational.schema import Schema
from repro.relational.types import DataType
from repro.textsys.documents import Document, DocumentStore
from repro.textsys.server import BooleanTextServer


class TestDocumentRows:
    def test_schema_shape(self):
        schema = document_schema(["title", "author"], "mercury")
        assert schema.names() == [
            "mercury.docid",
            "mercury.title",
            "mercury.author",
        ]

    def test_row_values_and_missing_fields(self):
        schema = document_schema(["title", "author"], "m")
        document = Document("d1", {"title": "t"})
        row = document_row(document, schema, ["title", "author"])
        assert row["m.docid"] == "d1"
        assert row["m.title"] == "t"
        assert row["m.author"] is None


@pytest.fixture
def world_with_hidden_field():
    """The author field is NOT in the short form, so any plan that must
    match authors locally has to retrieve long forms."""
    catalog = Catalog()
    student = catalog.create_table(
        "student", Schema.of(("name", DataType.VARCHAR))
    )
    student.insert_many([["radhika"], ["gravano"], ["kao"]])

    store = DocumentStore(
        ["title", "author", "year"],
        short_fields=["title", "year"],  # author hidden from short form
    )
    store.add_record(
        "d1", title="report one", author="radhika", year="may 1993"
    )
    store.add_record(
        "d2", title="report two", author="gravano", year="may 1993"
    )
    store.add_record("d3", title="report three", author="kao", year="june 1991")
    return catalog, BooleanTextServer(store)


class TestLongFormUpgrade:
    def test_text_scan_plan_upgrades_documents(self, world_with_hidden_field):
        """A TextScan plan matches text predicates locally; with the
        author field absent from the short form the executor must fetch
        long forms (each charged c_l) to evaluate them."""
        catalog, server = world_with_hidden_field
        query = MultiJoinQuery(
            relations=("student",),
            text_predicates=(TextJoinPredicate("student.name", "author"),),
            text_selections=(TextSelection("may 1993", "year"),),
            text_source="m",
        )
        context = JoinContext(catalog, TextClient(server))
        estimator = PlanEstimator(query, context)
        optimized = optimize_multijoin(query, estimator, space="extended")
        run_context = JoinContext(catalog, TextClient(server))
        execution = execute_plan(optimized.plan, query, run_context)

        names = {row["student.name"] for row in execution.rows}
        assert names == {"radhika", "gravano"}
        if "TextScan" in optimized.plan.describe():
            # Two may-1993 documents upgraded to long form.
            assert execution.cost.long_documents == 2

    def test_results_correct_regardless_of_plan_shape(
        self, world_with_hidden_field
    ):
        catalog, server = world_with_hidden_field
        query = MultiJoinQuery(
            relations=("student",),
            text_predicates=(TextJoinPredicate("student.name", "author"),),
            text_selections=(TextSelection("may 1993", "year"),),
            text_source="m",
        )
        results = set()
        for space in ("traditional", "extended"):
            context = JoinContext(catalog, TextClient(server))
            estimator = PlanEstimator(query, context)
            optimized = optimize_multijoin(query, estimator, space=space)
            execution = execute_plan(
                optimized.plan, query, JoinContext(catalog, TextClient(server))
            )
            results.add(
                frozenset(
                    (row["student.name"], row["m.docid"])
                    for row in execution.rows
                )
            )
        assert len(results) == 1
