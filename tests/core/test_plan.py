"""Unit tests for plan nodes (PrL tree structure rules)."""

import pytest

from repro.core.joinmethods import TupleSubstitution
from repro.core.optimizer.multiquery import TEXT_SOURCE
from repro.core.optimizer.plan import (
    JoinNode,
    ProbeNode,
    ScanNode,
    TextJoinNode,
    TextScanNode,
    plan_signature,
)
from repro.core.query import TextJoinPredicate, TextSelection
from repro.errors import PlanError

PRED_S = TextJoinPredicate("student.name", "author")
PRED_F = TextJoinPredicate("faculty.name", "author")
SEL = TextSelection("may 1993", "year")


def scan(relation="student"):
    return ScanNode(relation=relation)


def probe(child, columns=("student.name",), predicates=(PRED_S,)):
    return ProbeNode(
        child=child, probe_columns=columns, probe_predicates=predicates
    )


def text_join(child, predicates=(PRED_S,)):
    return TextJoinNode(
        child=child,
        method=TupleSubstitution(),
        available_predicates=predicates,
    )


class TestStructureRules:
    def test_scan_relations(self):
        assert scan().relations() == {"student"}
        assert not scan().includes_text

    def test_text_scan_needs_selections(self):
        with pytest.raises(PlanError):
            TextScanNode(selections=())
        node = TextScanNode(selections=(SEL,))
        assert node.relations() == {TEXT_SOURCE}
        assert node.includes_text

    def test_probe_must_precede_text_join(self):
        joined = text_join(scan())
        with pytest.raises(PlanError):
            probe(joined)

    def test_probe_needs_columns(self):
        with pytest.raises(PlanError):
            ProbeNode(child=scan(), probe_columns=(), probe_predicates=())

    def test_probed_columns_accumulate(self):
        inner = probe(scan())
        outer = ProbeNode(
            child=inner,
            probe_columns=("student.advisor",),
            probe_predicates=(TextJoinPredicate("student.advisor", "author"),),
        )
        assert outer.probed_columns() == {"student.name", "student.advisor"}

    def test_join_inputs_must_not_overlap(self):
        with pytest.raises(PlanError):
            JoinNode(left=scan(), right=scan())

    def test_text_match_predicates_need_documents(self):
        with pytest.raises(PlanError):
            JoinNode(
                left=scan("student"),
                right=scan("faculty"),
                text_match_predicates=(PRED_F,),
            )
        # Legal once one side carries the text source.
        JoinNode(
            left=text_join(scan("student")),
            right=scan("faculty"),
            text_match_predicates=(PRED_F,),
        )

    def test_only_one_text_join(self):
        joined = text_join(scan())
        with pytest.raises(PlanError):
            TextJoinNode(
                child=joined,
                method=TupleSubstitution(),
                available_predicates=(PRED_S,),
            )

    def test_text_join_needs_predicates(self):
        with pytest.raises(PlanError):
            TextJoinNode(
                child=scan(),
                method=TupleSubstitution(),
                available_predicates=(),
            )


class TestSignaturesAndDescribe:
    def test_signature_shapes(self):
        plan = JoinNode(
            left=probe(scan("student")),
            right=scan("faculty"),
        )
        assert plan_signature(plan) == "join(probe[student.name](student),faculty)"

    def test_text_join_signature(self):
        plan = text_join(scan())
        assert plan_signature(plan) == "textjoin[TS](student)"

    def test_describe_is_indented_tree(self):
        plan = text_join(probe(scan()))
        text = plan.describe()
        lines = text.splitlines()
        assert lines[0].startswith("TextJoin[TS]")
        assert lines[1].startswith("  Probe(")
        assert lines[2].startswith("    Scan(student")
