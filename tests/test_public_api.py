"""Public-API stability: every exported name resolves and is importable
from its documented location."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.relational",
    "repro.textsys",
    "repro.gateway",
    "repro.core",
    "repro.core.joinmethods",
    "repro.core.optimizer",
    "repro.workload",
    "repro.bench",
    "repro.remote",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), package_name
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name}"


def test_top_level_surface():
    import repro

    # The names the README quickstart leans on.
    for name in (
        "TextJoinQuery",
        "TupleSubstitution",
        "JoinContext",
        "TextClient",
        "Catalog",
        "BooleanTextServer",
        "build_cost_inputs",
        "choose_join_method",
        "optimize_multijoin",
        "execute_plan",
    ):
        assert hasattr(repro, name)
    assert repro.__version__ == "1.0.0"


def test_core_extension_surface():
    from repro import core

    for name in (
        "parse_query",
        "render_query",
        "explain_query",
        "execute_adaptively",
        "BatchedTupleSubstitution",
    ):
        assert hasattr(core, name)


def test_no_import_cycles_under_fresh_import():
    """Importing any subpackage first must not blow up on cycles."""
    import subprocess
    import sys

    for package_name in PACKAGES:
        result = subprocess.run(
            [sys.executable, "-c", f"import {package_name}"],
            capture_output=True,
        )
        assert result.returncode == 0, (
            package_name,
            result.stderr.decode()[:500],
        )
