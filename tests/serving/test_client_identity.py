"""Charge identity under concurrency (satellite 4 / DESIGN invariant 12).

Many threads hammer ONE metered :class:`TextClient` — through the
pooled remote transport, where frame dispatch itself adds more
threads — and the final ledger must equal a serial run of the same
workload **bit-identically**.  The paper's Section 4.1 identity prices
answered work with integer counts, so any lost increment or torn read
shows up as an exact-equality failure.
"""

from __future__ import annotations

import sys
import threading

import pytest

from repro.gateway.client import TextClient
from repro.gateway.costs import CostConstants
from repro.remote.transport import RemoteTextTransport
from repro.textsys.server import BooleanTextServer

THREADS = 6
ROUNDS = 40

EXPRESSIONS = [
    "TI='belief update'",
    "AU='gravano'",
    "TI='belief'",
    "AB='information'",
]


@pytest.fixture
def tight_switching():
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-6)
    yield
    sys.setswitchinterval(previous)


def workload(client: TextClient, rounds: int = ROUNDS) -> None:
    for _ in range(rounds):
        for expression in EXPRESSIONS:
            result = client.search(expression)
            for docid in result.docids[:2]:
                client.retrieve(docid)
        client.ledger.charge_rtp(3)


def serial_ledger(store) -> TextClient:
    """The oracle: the same total workload on a fresh client, one thread."""
    client = TextClient(
        BooleanTextServer(store), constants=CostConstants()
    )
    for _ in range(THREADS):
        workload(client)
    return client


def test_threads_sharing_one_client_charge_identically(
    tiny_store, tight_switching
):
    """In-process server, one shared client, THREADS hammering threads."""
    shared = TextClient(
        BooleanTextServer(tiny_store), constants=CostConstants()
    )
    threads = [
        threading.Thread(target=workload, args=(shared,))
        for _ in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    oracle = serial_ledger(tiny_store)
    assert shared.ledger.total == oracle.ledger.total
    assert shared.ledger.report() == oracle.ledger.report()


def test_threads_through_pooled_transport_charge_identically(
    tiny_store, tight_switching
):
    """The full stack: pooled remote transport under the shared client.

    ``pool_size > 1`` means retrieve_many / search_batch fan frames out
    over the transport's own worker pool — so ledger charges arrive from
    transport threads as well as the test's.  lan profile with
    ``error_rate=0`` keeps retries out (retry waste is a side channel
    anyway, but this pins ``total`` *and* the side channels).
    """
    from repro.remote.channel import FaultProfile

    clean = FaultProfile("clean", latency=0.0, error_rate=0.0)
    transport = RemoteTextTransport(
        BooleanTextServer(tiny_store),
        profile=clean,
        time_scale=0.0,
        pool_size=4,
    )
    shared = TextClient(transport, constants=CostConstants())

    def batch_workload() -> None:
        for _ in range(ROUNDS):
            shared.search_batch([expr for expr in EXPRESSIONS])
            shared.retrieve_many(["d1", "d2", "d3"])

    threads = [
        threading.Thread(target=batch_workload) for _ in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    oracle_transport = RemoteTextTransport(
        BooleanTextServer(tiny_store),
        profile=clean,
        time_scale=0.0,
        pool_size=1,
    )
    oracle = TextClient(oracle_transport, constants=CostConstants())
    for _ in range(THREADS):
        for _ in range(ROUNDS):
            oracle.search_batch([expr for expr in EXPRESSIONS])
            oracle.retrieve_many(["d1", "d2", "d3"])

    assert shared.ledger.total == oracle.ledger.total
    assert shared.ledger.report() == oracle.ledger.report()
    transport.close()
    oracle_transport.close()
