"""Cross-query sharing (DESIGN invariant 16).

Two layers under test:

- :class:`SharedSearchExecutor` directly: identical concurrent searches
  collapse to one backend dispatch; distinct canonical forms never
  merge; a failed shared dispatch fans the error out to every waiter.
- The full :class:`QueryService` with sharing enabled, across worker /
  shard / pool / window / cache configurations: **every tenant's
  charged ledger is bit-identical (cache off) or identity-preserving
  (cache on) to running alone** — the seconds actually avoided appear
  only in the ``seconds_shared`` side channel, never in ``total``.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.joinmethods import JoinContext, TupleSubstitution
from repro.errors import GatewayError
from repro.gateway.cache import GatewayCache
from repro.gateway.client import TextClient
from repro.gateway.costs import CostLedger
from repro.remote import build_sharded_transport
from repro.serving import QueryService, SharedSearchExecutor, TenantSpec
from repro.textsys.batching import BatchingTextServer
from repro.workload import build_default_scenario

#: Side channels: real seconds avoided, never part of the charged total.
SIDE_CHANNELS = ("seconds_saved", "seconds_shared", "seconds_retried")

#: Overlap-heavy mixed workload: three tenants mostly running the same
#: queries, so windows and single-flight have real work to share.
SUBMISSIONS = [
    ("alice", "q2"),
    ("bob", "q2"),
    ("carol", "q2"),
    ("alice", "q4"),
    ("bob", "q4"),
    ("carol", "q4"),
    ("alice", "q2"),
    ("bob", "q4"),
    ("carol", "q2"),
]

SPECS = [TenantSpec("alice"), TenantSpec("bob"), TenantSpec("carol")]


@pytest.fixture(scope="module")
def sharing_scenario():
    return build_default_scenario(seed=7, document_count=800)


@pytest.fixture(scope="module")
def alone_oracle(sharing_scenario):
    """Per-tenant ledgers from a serial, uncached, unshared run.

    Mirrors the service's wiring (cumulative ledger per tenant, fresh
    client per query) over the same 1-shard transport family the
    service runs on; charges are shard-count invariant, so one oracle
    serves every deployment in the grid.
    """
    backend = build_sharded_transport(
        sharing_scenario.server,
        1,
        profile="wan",
        seed=7,
        time_scale=0.0,
        pool_size=1,
    )
    ledgers = {}
    for tenant, query_id in SUBMISSIONS:
        ledger = ledgers.setdefault(
            tenant, CostLedger(constants=sharing_scenario.constants)
        )
        client = TextClient(backend, ledger=ledger)
        context = JoinContext(sharing_scenario.catalog, client)
        TupleSubstitution().execute(sharing_scenario.query(query_id), context)
    backend.close()
    return ledgers


def run_service(
    scenario,
    workers: int,
    shards: int,
    pool: int,
    window,
    cache_on: bool,
):
    backend = build_sharded_transport(
        scenario.server,
        shards,
        profile="wan",
        seed=7,
        time_scale=0.0,
        pool_size=pool,
    )
    service = QueryService(
        scenario,
        SPECS,
        workers=workers,
        capacity=32,
        backend=backend,
        cache=GatewayCache() if cache_on else None,
        share_window=window,
    )
    with service:
        tickets = [
            service.submit(tenant, query_id)
            for tenant, query_id in SUBMISSIONS
        ]
        for ticket in tickets:
            ticket.result(timeout=120)
    backend.close()
    return service


def strip_side_channels(report: dict) -> dict:
    return {
        key: value
        for key, value in report.items()
        if key not in SIDE_CHANNELS
    }


# ---------------------------------------------------------------------------
# the executor, in isolation
# ---------------------------------------------------------------------------
class CountingServer:
    """Delegates to a real server; counts dispatches; optional failure."""

    def __init__(self, inner, fail=False):
        self._inner = inner
        self._lock = threading.Lock()
        self.searches = 0
        self.batches = 0
        self.fail = fail

    def search(self, query):
        with self._lock:
            self.searches += 1
        if self.fail:
            raise GatewayError("injected backend failure")
        return self._inner.search(query)

    def search_batch(self, queries):
        with self._lock:
            self.batches += 1
            self.searches += len(queries)
        if self.fail:
            raise GatewayError("injected backend failure")
        return [self._inner.search(query) for query in queries]

    def __getattr__(self, name):
        return getattr(self._inner, name)


def _submit_concurrently(executor, jobs):
    """jobs: list of (query, tenant, ledger); returns (results, errors)."""
    barrier = threading.Barrier(len(jobs))
    results = [None] * len(jobs)
    errors = [None] * len(jobs)

    def runner(index, query, tenant, ledger):
        barrier.wait()
        try:
            results[index] = executor.submit(query, tenant, ledger)
        except Exception as error:  # noqa: BLE001 - collected for asserts
            errors[index] = error

    threads = [
        threading.Thread(target=runner, args=(index, *job))
        for index, job in enumerate(jobs)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return results, errors


class TestSharedSearchExecutor:
    def test_identical_searches_collapse_to_one_dispatch(self, tiny_server):
        server = CountingServer(BatchingTextServer(tiny_server))
        executor = SharedSearchExecutor(
            server, window_seconds=0.2, inflight_hint=lambda: 3
        )
        ledgers = [CostLedger() for _ in range(3)]
        results, errors = _submit_concurrently(
            executor,
            [
                ("TI='belief'", f"t{i}", ledgers[i])
                for i in range(3)
            ],
        )
        assert errors == [None, None, None]
        assert server.searches == 1
        docids = {tuple(result.docids) for result in results}
        assert len(docids) == 1
        # Exactly the joiners carry the side-channel credit; nobody was
        # charged anything by the executor itself (it never touches
        # ledgers except to credit).
        shared = [ledger.seconds_shared for ledger in ledgers]
        assert sum(1 for s in shared if s > 0) == 2
        assert all(ledger.total == 0.0 for ledger in ledgers)
        snapshot = executor.stats.snapshot()
        assert snapshot["shared_searches"] == 2  # two joins, one dispatch
        assert snapshot["seconds_shared"] == pytest.approx(sum(shared))

    def test_distinct_canonical_forms_never_merge(self, tiny_server):
        server = CountingServer(BatchingTextServer(tiny_server))
        executor = SharedSearchExecutor(
            server, window_seconds=0.2, inflight_hint=lambda: 2
        )
        ledgers = [CostLedger() for _ in range(2)]
        results, errors = _submit_concurrently(
            executor,
            [
                ("TI='belief'", "a", ledgers[0]),
                ("AB='retrieval'", "b", ledgers[1]),
            ],
        )
        assert errors == [None, None]
        # Two flights — batched into one invocation, but each query ran.
        assert server.searches == 2
        assert results[0].docids != results[1].docids
        assert all(ledger.seconds_shared == 0.0 for ledger in ledgers)

    def test_commuted_forms_share_one_flight(self, tiny_server):
        server = CountingServer(BatchingTextServer(tiny_server))
        executor = SharedSearchExecutor(
            server, window_seconds=0.2, inflight_hint=lambda: 2
        )
        ledgers = [CostLedger() for _ in range(2)]
        results, errors = _submit_concurrently(
            executor,
            [
                ("TI='belief' and AB='update'", "a", ledgers[0]),
                ("AB='update' and TI='belief'", "b", ledgers[1]),
            ],
        )
        assert errors == [None, None]
        assert server.searches == 1
        assert tuple(results[0].docids) == tuple(results[1].docids)

    def test_failure_fans_out_to_every_participant(self, tiny_server):
        server = CountingServer(BatchingTextServer(tiny_server), fail=True)
        executor = SharedSearchExecutor(
            server, window_seconds=0.2, inflight_hint=lambda: 3
        )
        results, errors = _submit_concurrently(
            executor,
            [("TI='belief'", f"t{i}", CostLedger()) for i in range(3)],
        )
        assert results == [None, None, None]
        assert all(isinstance(error, GatewayError) for error in errors)
        # The failed flight was removed: a retry dispatches afresh.
        server.fail = False
        retry = executor.submit("TI='belief'", "t0", CostLedger())
        assert retry is not None

    def test_zero_window_still_single_flights(self, tiny_server):
        class SlowServer(CountingServer):
            def search(self, query):
                import time

                time.sleep(0.03)
                return super().search(query)

        server = SlowServer(BatchingTextServer(tiny_server))
        executor = SharedSearchExecutor(server, window_seconds=0.0)
        results, errors = _submit_concurrently(
            executor,
            [("TI='belief'", f"t{i}", CostLedger()) for i in range(4)],
        )
        assert errors == [None] * 4
        assert server.searches == 1
        assert len({tuple(result.docids) for result in results}) == 1

    def test_rejects_bad_configuration(self, tiny_server):
        from repro.errors import ServingError

        with pytest.raises(ServingError):
            SharedSearchExecutor(tiny_server, window_seconds=-0.1)
        with pytest.raises(ServingError):
            SharedSearchExecutor(tiny_server, max_batch=0)


# ---------------------------------------------------------------------------
# invariant 16 at service scale
# ---------------------------------------------------------------------------
#: (workers, shards, pool, share_window, cache_on)
GRID = [
    (1, 1, 1, 0.02, False),
    (2, 2, 1, 0.02, False),
    (4, 2, 4, 0.02, False),
    (4, 1, 1, 0.0, False),  # pure single-flight, no batch window
    (4, 2, 4, None, False),  # sharing disabled: the control row
    (2, 1, 1, 0.02, True),
    (4, 2, 4, 0.02, True),
]


@pytest.mark.parametrize("workers,shards,pool,window,cache_on", GRID)
def test_invariant16_charged_as_if_alone(
    sharing_scenario, alone_oracle, workers, shards, pool, window, cache_on
):
    service = run_service(
        sharing_scenario, workers, shards, pool, window, cache_on
    )
    for tenant, oracle in alone_oracle.items():
        ledger = service.tenant(tenant).ledger
        if cache_on:
            # The cache answers some calls for free and credits exactly
            # the avoided charge, so charged + saved reconstructs the
            # alone-uncached spend; sharing adds nothing to either side.
            assert ledger.total + ledger.seconds_saved == pytest.approx(
                oracle.total
            )
        else:
            # Bit-identical accounting: same counts, same total — the
            # only divergence from running alone is the side channel.
            assert ledger.total == oracle.total
            assert strip_side_channels(ledger.report()) == strip_side_channels(
                oracle.report()
            )
            assert ledger.seconds_saved == 0.0
        if window is None:
            assert ledger.seconds_shared == 0.0


@given(
    order=st.permutations(SUBMISSIONS),
    config=st.sampled_from(
        [(1, 1, 1, 0.02), (2, 2, 1, 0.0), (4, 1, 4, 0.02), (4, 2, 2, 0.02)]
    ),
)
@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_invariant16_holds_under_any_interleaving(
    sharing_scenario, alone_oracle, order, config
):
    """Hypothesis: submission order and deployment shape never leak
    shared savings into any tenant's charged total (cache off → exact
    equality with the alone oracle; the multiset per tenant is fixed,
    so the module oracle stays valid for every permutation)."""
    workers, shards, pool, window = config
    backend = build_sharded_transport(
        sharing_scenario.server,
        shards,
        profile="wan",
        seed=7,
        time_scale=0.0,
        pool_size=pool,
    )
    service = QueryService(
        sharing_scenario,
        SPECS,
        workers=workers,
        capacity=32,
        backend=backend,
        share_window=window,
    )
    with service:
        tickets = [
            service.submit(tenant, query_id) for tenant, query_id in order
        ]
        for ticket in tickets:
            ticket.result(timeout=120)
    backend.close()
    for tenant, oracle in alone_oracle.items():
        ledger = service.tenant(tenant).ledger
        assert ledger.total == oracle.total
        assert strip_side_channels(ledger.report()) == strip_side_channels(
            oracle.report()
        )


def test_sharing_engages_and_is_attributed(sharing_scenario, alone_oracle):
    """Lockstep identical queries from three tenants: windows actually
    merge work (server does less than 3x the alone work), the savings
    land in ``seconds_shared``, and the metrics snapshot attributes
    cache/sharing per tenant.

    Engagement is made deterministic two ways.  All nine queries are
    admitted *before* the workers start, so the tenants' identical
    queries begin within microseconds of each other.  And the wire has
    real (scaled) latency: each probe stays in flight for milliseconds,
    so a tenant trailing by the tiny per-step drift joins the leader's
    in-flight flight and the three queries re-synchronize at every
    shared probe.  (At ``time_scale=0`` flights resolve in microseconds,
    the tenants drift to different probe positions, and identical keys
    almost never coincide — sharing then depends on scheduler luck.)
    Transport latency never touches the cost model, so the alone-oracle
    identity still holds exactly."""
    backend = build_sharded_transport(
        sharing_scenario.server,
        1,
        profile="wan",
        seed=7,
        time_scale=0.25,
        pool_size=4,
    )
    service = QueryService(
        sharing_scenario,
        SPECS,
        workers=4,
        capacity=32,
        backend=backend,
        share_window=0.05,
    )
    tickets = [
        service.submit(tenant, query_id) for tenant, query_id in SUBMISSIONS
    ]
    with service:
        for ticket in tickets:
            ticket.result(timeout=120)
    backend.close()
    sharing = service.metrics_snapshot()["sharing"]
    assert sharing["shared_searches"] > 0
    assert sharing["seconds_shared"] > 0
    total_shared = sum(
        service.tenant(name).ledger.seconds_shared for name in ("alice", "bob", "carol")
    )
    assert total_shared == pytest.approx(sharing["seconds_shared"])
    per_tenant = service.metrics_snapshot()["per_tenant"]
    for name in ("alice", "bob", "carol"):
        assert per_tenant[name]["seconds_shared"] == pytest.approx(
            service.tenant(name).ledger.seconds_shared
        )
        assert per_tenant[name]["ledger_total"] == alone_oracle[name].total
    # Tenant report() carries the side channel too.
    report = service.tenant("alice").report()
    assert "seconds_shared" in report
