"""Thread-safety of the gateway cache (satellites 2 and 3).

Before its lock went in, ``LruCache`` mutated an ``OrderedDict`` from
``get`` (move_to_end) and ``put`` (popitem) concurrently — raising
KeyError / RuntimeError under contention and corrupting hit/miss
counts.  And ``GatewayCache.validate`` was a check-then-act on the
``(store uid, version)`` fingerprint: two threads could both observe a
stale version, double-flush, and interleave fills of the old and new
generations.  These tests fail (often with exceptions, always
statistically) without the locks.
"""

from __future__ import annotations

import sys
import threading

import pytest

from repro.gateway.cache import GatewayCache, LruCache

THREADS = 8
ITERATIONS = 3_000


@pytest.fixture
def tight_switching():
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-6)
    yield
    sys.setswitchinterval(previous)


def run_threads(workers) -> None:
    threads = [threading.Thread(target=worker) for worker in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


def test_lru_cache_survives_concurrent_get_put(tight_switching):
    """No KeyError/RuntimeError, every lookup counted exactly once."""
    cache: LruCache[int] = LruCache(capacity=32)
    errors = []

    def worker(seed: int) -> None:
        try:
            for i in range(ITERATIONS):
                key = f"k{(seed * 31 + i) % 100}"
                if cache.get(key) is None:
                    cache.put(key, i)
        except Exception as exc:  # pragma: no cover - the failure mode
            errors.append(exc)

    run_threads([lambda s=s: worker(s) for s in range(THREADS)])
    assert not errors
    # Exactly one get per iteration per thread — lost-update-free stats.
    assert cache.stats.lookups == THREADS * ITERATIONS
    assert len(cache) <= 32


def test_lru_eviction_accounting_is_exact(tight_switching):
    """puts - evictions == live entries, even under racing evictions."""
    cache: LruCache[int] = LruCache(capacity=8)
    puts_done = [0] * THREADS

    def worker(seed: int) -> None:
        for i in range(ITERATIONS):
            cache.put(f"k{seed}-{i}", i)  # all distinct: every put inserts
            puts_done[seed] += 1

    run_threads([lambda s=s: worker(s) for s in range(THREADS)])
    assert sum(puts_done) == THREADS * ITERATIONS
    assert cache.stats.evictions == THREADS * ITERATIONS - len(cache)
    assert len(cache) == 8


def test_validate_flushes_exactly_once_per_version_change(tight_switching):
    """Racing validators agree: one flush per version move, not N."""
    cache = GatewayCache()
    cache.validate((1, 0))
    cache.search.put("expr", "gen-0")
    barrier = threading.Barrier(THREADS)
    flushed = []

    def worker() -> None:
        barrier.wait()
        flushed.append(cache.validate((1, 1)))

    run_threads([worker for _ in range(THREADS)])
    # Exactly one thread observed the stale generation and flushed it
    # (validate returns False for the flusher, True for everyone else).
    assert flushed.count(False) == 1
    assert flushed.count(True) == THREADS - 1
    assert cache.search.stats.invalidations == 1
    assert "expr" not in cache.search


def test_version_stamped_put_refuses_stale_fills():
    """A fill computed under an old version must not survive a flush.

    The put-after-flush race: thread A validates at v0 and goes off to
    compute a result; meanwhile thread B validates at v1, flushing the
    cache.  When A comes back, its fill is a *stale* answer — the
    version-stamped put detects the mismatch and drops it.
    """
    cache = GatewayCache()
    cache.validate((7, 0))
    # Thread A would fill under version 0 ... but the store moved on.
    cache.validate((7, 1))
    assert cache.put_search("expr", "stale-result", (7, 0)) is False
    assert "expr" not in cache.search
    # A fill stamped with the current version lands.
    assert cache.put_search("expr", "fresh-result", (7, 1)) is True
    assert cache.search.get("expr") == "fresh-result"


def test_concurrent_validate_and_fill_never_leaves_stale_entries(
    tight_switching,
):
    """Fills and version bumps race; the cache never serves cross-generation.

    Writers fill entries stamped with the version they validated; a
    flusher keeps bumping the version.  At every moment, any entry in
    the cache must belong to the *current* generation.
    """
    cache = GatewayCache()
    stop = threading.Event()
    violations = []
    version_lock = threading.Lock()
    current = [0]

    def flusher() -> None:
        for bump in range(1, 200):
            with version_lock:
                current[0] = bump
            cache.validate((1, bump))

    def writer(seed: int) -> None:
        i = 0
        while not stop.is_set():
            i += 1
            with version_lock:
                seen = current[0]
            cache.validate((1, seen))
            key = f"k{seed}-{i % 10}"
            if cache.put_search(key, ("gen", seen), (1, seen)):
                value = cache.search.peek(key)
                if value is not None and value[1] < seen:
                    violations.append((key, value, seen))

    writers = [
        threading.Thread(target=writer, args=(seed,)) for seed in range(4)
    ]
    for thread in writers:
        thread.start()
    flusher()
    stop.set()
    for thread in writers:
        thread.join()
    assert not violations
