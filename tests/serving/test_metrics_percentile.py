"""Percentile correctness and thread-safety of :mod:`repro.serving.metrics`.

The old floor-based nearest-rank (``ordered[min(n-1, floor(f*n))]``)
overshot by one position whenever ``fraction * n`` landed exactly on an
integer: p50 of ``[1, 2]`` returned 2, p99 of 100 samples returned the
maximum, and a single-sample window reported its one latency as every
percentile *except* p0.  These tests fail against that implementation
and pin the ceil-based rank, the empty-window zero, and the snapshot's
consistency under tight thread switching.
"""

from __future__ import annotations

import sys
import threading

import pytest

from repro.serving.metrics import LATENCY_WINDOW, ServiceMetrics, percentile

THREADS = 8
ITERATIONS = 2_000


@pytest.fixture
def tight_switching():
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-6)
    yield
    sys.setswitchinterval(previous)


class TestPercentile:
    def test_empty_window_is_zero(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([], 0.99) == 0.0

    def test_single_sample_is_every_percentile(self):
        for fraction in (0.0, 0.5, 0.99, 1.0):
            assert percentile([7.5], fraction) == 7.5

    def test_two_samples_p50_is_the_lower(self):
        # The pre-fix floor rank returned 2 here.
        assert percentile([1.0, 2.0], 0.5) == 1.0

    def test_hundred_samples_p99_is_the_99th(self):
        # The pre-fix floor rank returned 100 (the maximum) here.
        samples = [float(value) for value in range(1, 101)]
        assert percentile(samples, 0.99) == 99.0
        assert percentile(samples, 0.50) == 50.0
        assert percentile(samples, 1.0) == 100.0
        assert percentile(samples, 0.0) == 1.0

    def test_order_insensitive(self):
        samples = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert percentile(samples, 0.5) == 3.0
        assert percentile(sorted(samples, reverse=True), 0.5) == 3.0

    def test_fraction_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)
        with pytest.raises(ValueError):
            percentile([1.0], -0.1)


class TestSnapshotEdges:
    def test_snapshot_with_no_latencies(self):
        metrics = ServiceMetrics()
        snapshot = metrics.snapshot()
        assert snapshot["latency_p50"] == 0.0
        assert snapshot["latency_p99"] == 0.0
        assert snapshot["latency_max"] == 0.0
        assert snapshot["completed"] == 0

    def test_snapshot_with_one_latency(self):
        metrics = ServiceMetrics()
        metrics.on_completed(0.25)
        snapshot = metrics.snapshot()
        assert snapshot["latency_p50"] == 0.25
        assert snapshot["latency_p99"] == 0.25
        assert snapshot["latency_max"] == 0.25

    def test_window_is_bounded(self):
        metrics = ServiceMetrics()
        for value in range(LATENCY_WINDOW + 100):
            metrics.on_completed(float(value))
        samples = metrics.latency_samples()
        assert len(samples) == LATENCY_WINDOW
        assert min(samples) == 100.0  # the oldest 100 rolled out


class TestConcurrency:
    def test_concurrent_record_and_snapshot(self, tight_switching):
        """Counters never drop an increment and snapshots never see a
        torn view (percentiles computed over a mid-append window must
        not raise, and final counts are exact)."""
        metrics = ServiceMetrics()
        errors = []

        def recorder(worker: int) -> None:
            try:
                for index in range(ITERATIONS):
                    if (worker + index) % 4 == 0:
                        metrics.on_failed(0.001 * index)
                    else:
                        metrics.on_completed(0.001 * index)
                    metrics.on_submitted()
            except BaseException as error:  # pragma: no cover
                errors.append(error)

        def reader() -> None:
            try:
                for _ in range(ITERATIONS // 4):
                    snapshot = metrics.snapshot()
                    assert snapshot["latency_p50"] >= 0.0
                    assert snapshot["latency_p99"] >= snapshot["latency_p50"]
            except BaseException as error:  # pragma: no cover
                errors.append(error)

        threads = [
            threading.Thread(target=recorder, args=(worker,))
            for worker in range(THREADS)
        ] + [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        final = metrics.snapshot()
        assert final["submitted"] == THREADS * ITERATIONS
        assert final["completed"] + final["failed"] == THREADS * ITERATIONS
        assert len(metrics.latency_samples()) == LATENCY_WINDOW
