"""Stride-scheduler fairness properties (deterministic, no threads)."""

from __future__ import annotations

import pytest

from repro.errors import ServingError
from repro.serving.scheduler import StrideScheduler


def drive(scheduler: StrideScheduler, tenants, dispatches: int):
    """Run the scheduler with everyone always eligible; count dispatches."""
    counts = {tenant: 0 for tenant in tenants}
    for _ in range(dispatches):
        choice = scheduler.pick(tenants)
        counts[choice] += 1
        scheduler.on_dispatch(choice)
    return counts


def test_equal_weights_alternate():
    scheduler = StrideScheduler()
    scheduler.register("a", 1.0)
    scheduler.register("b", 1.0)
    counts = drive(scheduler, ["a", "b"], 100)
    assert counts == {"a": 50, "b": 50}


def test_weights_yield_proportional_dispatches():
    """Weights 4:2:1 → dispatch counts 4:2:1 over any full period."""
    scheduler = StrideScheduler()
    scheduler.register("heavy", 4.0)
    scheduler.register("medium", 2.0)
    scheduler.register("light", 1.0)
    counts = drive(scheduler, ["heavy", "medium", "light"], 700)
    assert counts["heavy"] == 400
    assert counts["medium"] == 200
    assert counts["light"] == 100


def test_pick_ignores_ineligible_tenants():
    scheduler = StrideScheduler()
    scheduler.register("a", 1.0)
    scheduler.register("b", 1.0)
    assert scheduler.pick(["b"]) == "b"
    assert scheduler.pick([]) is None


def test_reactivation_forfeits_idle_credit():
    """A tenant that sat idle gets no catch-up burst on return."""
    scheduler = StrideScheduler()
    scheduler.register("busy", 1.0)
    scheduler.register("idler", 1.0)
    # The idler goes away; busy accumulates pass.
    for _ in range(50):
        scheduler.on_dispatch("busy")
    scheduler.reactivate("idler", busy=["busy"])
    # On return the idler's pass is raised to busy's: dispatches now
    # alternate instead of the idler monopolising 50 turns.
    counts = drive(scheduler, ["busy", "idler"], 20)
    assert counts == {"busy": 10, "idler": 10}


def test_late_registration_joins_at_the_floor():
    scheduler = StrideScheduler()
    scheduler.register("early", 1.0)
    for _ in range(30):
        scheduler.on_dispatch("early")
    scheduler.register("late", 1.0)
    counts = drive(scheduler, ["early", "late"], 20)
    # The newcomer joins at the minimum pass (its own), then shares.
    assert counts["late"] >= counts["early"]
    assert counts["late"] - counts["early"] <= 2


def test_register_rejects_bad_input():
    scheduler = StrideScheduler()
    scheduler.register("a", 1.0)
    with pytest.raises(ServingError):
        scheduler.register("a", 2.0)
    with pytest.raises(ServingError):
        scheduler.register("b", 0.0)


class TestSoloFastPath:
    """Deferred pass accumulation while one tenant is alone must be
    invisible: every observable (pass_of, fairness after a second tenant
    appears, reactivation floors) matches the always-eager behavior."""

    def test_solo_dispatches_settle_into_pass(self):
        scheduler = StrideScheduler()
        scheduler.register("solo", 2.0)
        for _ in range(10):
            assert scheduler.pick(["solo"]) == "solo"
            scheduler.on_dispatch("solo")
        from repro.serving.scheduler import STRIDE_UNIT

        assert scheduler.pass_of("solo") == pytest.approx(
            10 * STRIDE_UNIT / 2.0
        )

    def test_empty_pick_does_not_break_the_fast_path(self):
        scheduler = StrideScheduler()
        scheduler.register("solo", 1.0)
        scheduler.pick(["solo"])
        scheduler.on_dispatch("solo")
        assert scheduler.pick([]) is None  # queue momentarily drained
        scheduler.pick(["solo"])
        scheduler.on_dispatch("solo")
        assert scheduler.pass_of("solo") > 0

    def test_fairness_preserved_after_solo_burst(self):
        """A long solo run, then a second tenant arrives: the newcomer
        joins at the floor and the pair shares — identical to a
        scheduler that never deferred."""
        fast = StrideScheduler()
        fast.register("a", 1.0)
        for _ in range(1000):
            fast.pick(["a"])
            fast.on_dispatch("a")
        fast.register("b", 1.0)
        counts = drive(fast, ["a", "b"], 40)
        assert counts["b"] >= counts["a"]
        assert counts["b"] - counts["a"] <= 2

    def test_reactivation_flushes_solo_credit(self):
        scheduler = StrideScheduler()
        scheduler.register("busy", 1.0)
        scheduler.register("idler", 1.0)
        for _ in range(50):
            scheduler.pick(["busy"])  # solo mode: idler has nothing queued
            scheduler.on_dispatch("busy")
        scheduler.reactivate("idler", busy=["busy"])
        counts = drive(scheduler, ["busy", "idler"], 20)
        assert counts == {"busy": 10, "idler": 10}

    def test_pick_of_unknown_solo_tenant_raises(self):
        scheduler = StrideScheduler()
        scheduler.register("a", 1.0)
        with pytest.raises(KeyError):
            scheduler.pick(["ghost"])

    def test_switching_solo_tenants_settles_the_first(self):
        scheduler = StrideScheduler()
        scheduler.register("a", 1.0)
        scheduler.register("b", 1.0)
        scheduler.pick(["a"])
        scheduler.on_dispatch("a")
        scheduler.pick(["b"])  # different solo tenant: a's deferral lands
        scheduler.on_dispatch("b")
        assert scheduler.pass_of("a") == scheduler.pass_of("b")
