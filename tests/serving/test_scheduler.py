"""Stride-scheduler fairness properties (deterministic, no threads)."""

from __future__ import annotations

import pytest

from repro.errors import ServingError
from repro.serving.scheduler import StrideScheduler


def drive(scheduler: StrideScheduler, tenants, dispatches: int):
    """Run the scheduler with everyone always eligible; count dispatches."""
    counts = {tenant: 0 for tenant in tenants}
    for _ in range(dispatches):
        choice = scheduler.pick(tenants)
        counts[choice] += 1
        scheduler.on_dispatch(choice)
    return counts


def test_equal_weights_alternate():
    scheduler = StrideScheduler()
    scheduler.register("a", 1.0)
    scheduler.register("b", 1.0)
    counts = drive(scheduler, ["a", "b"], 100)
    assert counts == {"a": 50, "b": 50}


def test_weights_yield_proportional_dispatches():
    """Weights 4:2:1 → dispatch counts 4:2:1 over any full period."""
    scheduler = StrideScheduler()
    scheduler.register("heavy", 4.0)
    scheduler.register("medium", 2.0)
    scheduler.register("light", 1.0)
    counts = drive(scheduler, ["heavy", "medium", "light"], 700)
    assert counts["heavy"] == 400
    assert counts["medium"] == 200
    assert counts["light"] == 100


def test_pick_ignores_ineligible_tenants():
    scheduler = StrideScheduler()
    scheduler.register("a", 1.0)
    scheduler.register("b", 1.0)
    assert scheduler.pick(["b"]) == "b"
    assert scheduler.pick([]) is None


def test_reactivation_forfeits_idle_credit():
    """A tenant that sat idle gets no catch-up burst on return."""
    scheduler = StrideScheduler()
    scheduler.register("busy", 1.0)
    scheduler.register("idler", 1.0)
    # The idler goes away; busy accumulates pass.
    for _ in range(50):
        scheduler.on_dispatch("busy")
    scheduler.reactivate("idler", busy=["busy"])
    # On return the idler's pass is raised to busy's: dispatches now
    # alternate instead of the idler monopolising 50 turns.
    counts = drive(scheduler, ["busy", "idler"], 20)
    assert counts == {"busy": 10, "idler": 10}


def test_late_registration_joins_at_the_floor():
    scheduler = StrideScheduler()
    scheduler.register("early", 1.0)
    for _ in range(30):
        scheduler.on_dispatch("early")
    scheduler.register("late", 1.0)
    counts = drive(scheduler, ["early", "late"], 20)
    # The newcomer joins at the minimum pass (its own), then shares.
    assert counts["late"] >= counts["early"]
    assert counts["late"] - counts["early"] <= 2


def test_register_rejects_bad_input():
    scheduler = StrideScheduler()
    scheduler.register("a", 1.0)
    with pytest.raises(ServingError):
        scheduler.register("a", 2.0)
    with pytest.raises(ServingError):
        scheduler.register("b", 0.0)
