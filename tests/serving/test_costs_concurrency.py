"""Thread-safety of the cost ledger (the satellite-1 regression).

The original ``CostLedger`` mutated its counters with bare ``+=``, which
in CPython compiles to LOAD_ATTR / ADD / STORE_ATTR — three bytecodes a
thread switch can interleave, silently losing increments.  These tests
hammer one ledger from many threads with a tiny switch interval and
assert the final counts are *exactly* the serial ones.  Before the lock
went in, they failed with lost updates almost every run.
"""

from __future__ import annotations

import sys
import threading

import pytest

from repro.errors import BudgetExceededError
from repro.gateway.costs import CostConstants, CostLedger
from repro.serving.tenants import BudgetedCostLedger

THREADS = 8
ITERATIONS = 2_000


@pytest.fixture
def tight_switching():
    """Force thread switches every few bytecodes to provoke races."""
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-6)
    yield
    sys.setswitchinterval(previous)


def hammer(ledger: CostLedger) -> None:
    for _ in range(ITERATIONS):
        ledger.charge_search(postings_processed=3, result_size=2)
        ledger.charge_retrieve()
        ledger.charge_rtp(2)
        ledger.credit_saved(0.5)
        ledger.charge_retry_waste(0.25)


def run_threads(target, *args, threads: int = THREADS) -> None:
    workers = [
        threading.Thread(target=target, args=args) for _ in range(threads)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()


def test_concurrent_charges_lose_no_updates(tight_switching):
    """N threads × M charges == exactly N·M of every counter."""
    ledger = CostLedger(constants=CostConstants())
    run_threads(hammer, ledger)

    calls = THREADS * ITERATIONS
    assert ledger.searches == calls
    assert ledger.postings_processed == 3 * calls
    assert ledger.short_documents == 2 * calls
    assert ledger.long_documents == calls
    assert ledger.rtp_documents == 2 * calls
    assert ledger.seconds_saved == pytest.approx(0.5 * calls)
    assert ledger.seconds_retried == pytest.approx(0.25 * calls)


def test_concurrent_total_matches_serial_total_bit_identically(tight_switching):
    """The headline identity: concurrent total == serial total, bitwise."""
    concurrent = CostLedger(constants=CostConstants())
    run_threads(hammer, concurrent)

    serial = CostLedger(constants=CostConstants())
    for _ in range(THREADS):
        hammer(serial)

    # == on floats, deliberately: the totals are computed from integer
    # counts, so any interleaving must yield the identical bit pattern.
    assert concurrent.total == serial.total
    assert concurrent.report() == serial.report()


def test_snapshot_is_internally_consistent_under_load(tight_switching):
    """A racing snapshot never observes a half-applied charge."""
    constants = CostConstants()
    ledger = CostLedger(constants=constants)
    stop = threading.Event()
    torn = []

    def snapshotter() -> None:
        while not stop.is_set():
            view = ledger.snapshot()
            # Every charge_search bumps searches and postings together
            # (3 postings per search here); a torn read breaks the ratio.
            if view.postings_processed != 3 * view.searches:
                torn.append(view)

    reader = threading.Thread(target=snapshotter)
    reader.start()
    run_threads(
        lambda: [
            ledger.charge_search(postings_processed=3, result_size=1)
            for _ in range(ITERATIONS)
        ],
        threads=4,
    )
    stop.set()
    reader.join()
    assert not torn


# ----------------------------------------------------------------------
# the budgeted ledger
# ----------------------------------------------------------------------
def test_budgeted_ledger_charges_then_raises():
    constants = CostConstants(invocation=3.0)
    ledger = BudgetedCostLedger(constants=constants, budget_seconds=5.0)
    ledger.charge_search(postings_processed=0, result_size=0)  # 3.0s: fine
    assert not ledger.exhausted
    with pytest.raises(BudgetExceededError):
        ledger.charge_search(postings_processed=0, result_size=0)  # 6.0s
    # The crossing charge stays on the ledger (the call already happened).
    assert ledger.searches == 2
    assert ledger.exhausted


def test_budgeted_ledger_unlimited_when_budget_is_none():
    ledger = BudgetedCostLedger(constants=CostConstants())
    for _ in range(100):
        ledger.charge_retrieve()
    assert not ledger.exhausted


def test_budgeted_ledger_concurrent_enforcement(tight_switching):
    """Concurrent charges never blow past the budget unnoticed."""
    constants = CostConstants(invocation=1.0)
    ledger = BudgetedCostLedger(constants=constants, budget_seconds=50.0)
    overruns = []

    def charge_until_refused() -> None:
        try:
            for _ in range(100):
                ledger.charge_search(postings_processed=0, result_size=0)
            overruns.append("never refused")
        except BudgetExceededError:
            pass

    run_threads(charge_until_refused, threads=4)
    assert not overruns
    # Every thread stopped at its own crossing charge: at most one
    # crossing charge per thread beyond the 50 in-budget ones.
    assert 50 < ledger.searches <= 54
