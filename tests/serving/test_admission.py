"""The bounded admission queue: backpressure, fairness, in-flight caps."""

from __future__ import annotations

import threading

import pytest

from repro.errors import AdmissionRejected, ServingError
from repro.serving.admission import DEFAULT_RETRY_AFTER, AdmissionQueue


def make_queue(capacity=4, workers=1, tenants=("a", "b")) -> AdmissionQueue:
    queue = AdmissionQueue(capacity, workers=workers)
    for tenant in tenants:
        queue.register_tenant(tenant, 1.0)
    return queue


def test_offer_take_done_roundtrip():
    queue = make_queue()
    queue.offer("a", "q1")
    tenant, item = queue.take(timeout=1)
    assert (tenant, item) == ("a", "q1")
    queue.done("a", 0.01)
    assert queue.depth == 0
    assert queue.inflight == 0


def test_offer_beyond_capacity_rejects_with_retry_after():
    queue = make_queue(capacity=2)
    queue.offer("a", 1)
    queue.offer("a", 2)
    with pytest.raises(AdmissionRejected) as rejection:
        queue.offer("a", 3)
    assert rejection.value.retry_after >= DEFAULT_RETRY_AFTER


def test_retry_after_grows_with_backlog_and_service_time():
    queue = make_queue(capacity=8)
    # Teach the estimator: 1s per query, one worker.
    queue.offer("a", 0)
    queue.take(timeout=1)
    queue.done("a", 1.0)
    for i in range(8):
        queue.offer("a", i)
    with pytest.raises(AdmissionRejected) as rejection:
        queue.offer("a", 9)
    # 8 queued × ~1s service each / 1 worker ≈ 8s to drain.
    assert rejection.value.retry_after == pytest.approx(8.0)


def test_per_tenant_inflight_capped_at_one():
    queue = make_queue()
    queue.offer("a", 1)
    queue.offer("a", 2)
    queue.offer("b", 3)
    first = queue.take(timeout=1)
    assert first[0] == "a"
    # a has another item queued, but one in flight: b must be next.
    second = queue.take(timeout=1)
    assert second[0] == "b"
    # Nobody else is eligible until someone finishes.
    assert queue.take(timeout=0.05) is None
    queue.done("a", 0.01)
    third = queue.take(timeout=1)
    assert third == ("a", 2)


def test_dispatch_order_honours_weights():
    queue = AdmissionQueue(capacity=64, workers=1)
    queue.register_tenant("heavy", 4.0)
    queue.register_tenant("light", 1.0)
    for i in range(20):
        queue.offer("heavy", i)
        queue.offer("light", i)
    order = []
    for _ in range(10):
        tenant, _ = queue.take(timeout=1)
        order.append(tenant)
        queue.done(tenant, 0.0)
    # 4:1 weighting → 8 heavy dispatches in the first 10.
    assert order.count("heavy") == 8
    assert order.count("light") == 2


def test_take_blocks_until_offer_arrives():
    queue = make_queue()
    got = []

    def consumer() -> None:
        got.append(queue.take(timeout=5))

    thread = threading.Thread(target=consumer)
    thread.start()
    queue.offer("a", "late-arrival")
    thread.join(timeout=5)
    assert got == [("a", "late-arrival")]


def test_close_drains_then_returns_none():
    queue = make_queue()
    queue.offer("a", 1)
    queue.close(drain=True)
    with pytest.raises(AdmissionRejected):
        queue.offer("a", 2)
    assert queue.take(timeout=1) == ("a", 1)
    queue.done("a", 0.0)
    assert queue.take(timeout=1) is None


def test_close_without_drain_returns_dropped_items():
    queue = make_queue()
    queue.offer("a", 1)
    queue.offer("b", 2)
    dropped = queue.close(drain=False)
    assert sorted(dropped) == [1, 2]
    assert queue.take(timeout=0.05) is None


def test_done_without_take_is_an_error():
    queue = make_queue()
    with pytest.raises(ServingError):
        queue.done("a", 0.0)


def test_unknown_tenant_is_an_error():
    queue = make_queue()
    with pytest.raises(ServingError):
        queue.offer("nobody", 1)
