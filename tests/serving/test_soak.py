"""Mixed Boolean + vector serving: attribution under concurrency.

Fast tests pin the routing and budget semantics; the ``slow``-marked
soak run keeps a mixed multi-tenant load on the service for about a
minute and then demands the per-tenant, per-backend ledgers match a
serial replay exactly — concurrency must never smear charges across
either the tenant or the backend boundary (DESIGN invariant 15).
"""

from __future__ import annotations

import time

import pytest

from repro.core.joinmethods import JoinContext, TupleSubstitution
from repro.errors import BudgetExceededError, ServingError
from repro.gateway.client import TextClient
from repro.gateway.costs import VECTOR_CONSTANTS, CostLedger
from repro.serving import QueryService, TenantSpec
from repro.textsys.vector import VectorQuery
from repro.textsys.vectorserver import VectorTextServer
from repro.workload.scenarios import build_default_scenario


@pytest.fixture(scope="module")
def scenario():
    return build_default_scenario(seed=7, document_count=600)


@pytest.fixture(scope="module")
def vector_server(scenario):
    return VectorTextServer(scenario.server.store, "title")


def vector_query(terms, top_k=5):
    return VectorQuery("title", tuple(terms), top_k=top_k)


def serial_replay(scenario, vector_server, submissions):
    """The oracle: one cumulative ledger pair per tenant, queries in
    per-tenant order, a fresh client per query — the service's wiring,
    minus the concurrency."""
    boolean_ledgers = {}
    vector_ledgers = {}
    for tenant, query in submissions:
        if isinstance(query, VectorQuery):
            ledger = vector_ledgers.setdefault(
                tenant, CostLedger(constants=VECTOR_CONSTANTS)
            )
            TextClient(vector_server, ledger=ledger).search(query)
        else:
            ledger = boolean_ledgers.setdefault(
                tenant, CostLedger(constants=scenario.constants)
            )
            client = TextClient(scenario.server, ledger=ledger)
            context = JoinContext(scenario.catalog, client)
            TupleSubstitution().execute(scenario.query(query), context)
    return boolean_ledgers, vector_ledgers


def assert_no_drift(service, scenario, vector_server, submissions):
    boolean_ledgers, vector_ledgers = serial_replay(
        scenario, vector_server, submissions
    )
    for tenant, ledger in boolean_ledgers.items():
        assert service.tenant(tenant).ledger.report() == ledger.report()
    for tenant, ledger in vector_ledgers.items():
        assert service.tenant(tenant).vector_ledger.report() == ledger.report()


def test_mixed_workload_routes_charges_per_backend(scenario, vector_server):
    specs = [TenantSpec("alice"), TenantSpec("bob")]
    submissions = [
        ("alice", "q1"),
        ("bob", vector_query(["belief", "update"])),
        ("alice", vector_query(["join"])),
        ("bob", "q2"),
    ]
    with QueryService(
        scenario, specs, workers=3, vector_backend=vector_server
    ) as service:
        tickets = [service.submit(t, q) for t, q in submissions]
        for ticket in tickets:
            ticket.result(timeout=60)
    # Vector charges land on the vector ledger, priced with the vector
    # backend's constants; the Boolean ledger never sees them.
    vector_totals = service.vector_ledger_totals()
    assert vector_totals["alice"] > 0.0 and vector_totals["bob"] > 0.0
    for name in ("alice", "bob"):
        state = service.tenant(name)
        assert state.vector_ledger.constants == VECTOR_CONSTANTS
        assert state.ledger.total > 0.0  # the Boolean query
    assert_no_drift(service, scenario, vector_server, submissions)


def test_vector_query_without_backend_is_a_serving_error(scenario):
    with QueryService(scenario, [TenantSpec("alice")], workers=1) as service:
        with pytest.raises(ServingError, match="no vector backend"):
            service.submit("alice", vector_query(["belief"]))
        before = service.metrics_snapshot()
        assert before["rejected"] == 1
        # The tenant has no vector ledger at all without a backend.
        assert service.tenant("alice").vector_ledger is None
        assert service.vector_ledger_totals() == {}


def test_vector_budget_is_separate_from_the_boolean_one(
    scenario, vector_server
):
    """The vector budget meters only vector spend: the crossing vector
    query dies, later vector admissions refuse, Boolean work continues."""
    specs = [TenantSpec("broke", vector_budget_seconds=1.0)]  # < c_i = 3.0
    with QueryService(
        scenario, specs, workers=1, vector_backend=vector_server
    ) as service:
        ticket = service.submit("broke", vector_query(["belief"]))
        with pytest.raises(BudgetExceededError):
            ticket.result(timeout=60)
        with pytest.raises(BudgetExceededError, match="vector"):
            service.submit("broke", vector_query(["belief"]))
        # Boolean admission still works — its ledger is unmetered.
        service.submit("broke", "q2").result(timeout=60)
    state = service.tenant("broke")
    assert state.vector_ledger.exhausted
    assert not state.ledger.exhausted
    assert state.ledger.total > 0.0


@pytest.mark.slow
def test_sixty_second_mixed_soak(scenario, vector_server):
    """~60s of sustained mixed load: latency percentiles are finite and
    the ledgers match a serial replay bit-for-bit afterwards."""
    specs = [
        TenantSpec("alice", weight=2.0),
        TenantSpec("bob"),
        TenantSpec("carol"),
    ]
    boolean_ids = ["q1", "q2", "q4"]
    term_pool = ["belief", "update", "join", "query", "logic", "systems"]
    submissions = []
    deadline = time.monotonic() + 60.0
    with QueryService(
        scenario, specs, workers=4, capacity=64, vector_backend=vector_server
    ) as service:
        round_number = 0
        while time.monotonic() < deadline:
            batch = []
            for index, tenant in enumerate(("alice", "bob", "carol")):
                step = round_number + index
                if step % 2 == 0:
                    query = boolean_ids[step % len(boolean_ids)]
                else:
                    terms = [
                        term_pool[step % len(term_pool)],
                        term_pool[(step + 3) % len(term_pool)],
                    ]
                    query = vector_query(terms, top_k=(step % 7) + 1)
                batch.append((tenant, query))
            tickets = [service.submit(t, q) for t, q in batch]
            for ticket in tickets:
                ticket.result(timeout=60)
            submissions.extend(batch)
            round_number += 1
        snapshot = service.metrics_snapshot()
    assert snapshot["completed"] == len(submissions) >= 30
    assert snapshot["failed"] == 0
    assert 0.0 <= snapshot["latency_p50"] <= snapshot["latency_p99"]
    assert snapshot["latency_p99"] > 0.0
    assert_no_drift(service, scenario, vector_server, submissions)
