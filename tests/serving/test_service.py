"""End-to-end tests of the multi-tenant query service (the tentpole)."""

from __future__ import annotations

import pytest

from repro.errors import (
    AdmissionRejected,
    BudgetExceededError,
    QuotaExceededError,
    ServingError,
)
from repro.gateway.cache import GatewayCache
from repro.serving import QueryService, TenantSpec
from repro.workload.scenarios import build_default_scenario


@pytest.fixture(scope="module")
def serving_scenario():
    """A smaller corpus than the Table-2 default: these tests run many
    queries and only care about serving behaviour, not planted regimes."""
    return build_default_scenario(seed=7, document_count=800)


def run_mixed_workload(service, submissions):
    tickets = [
        service.submit(tenant, query) for tenant, query in submissions
    ]
    return [ticket.result(timeout=60) for ticket in tickets]


def test_mixed_tenants_complete_and_ledgers_separate(serving_scenario):
    specs = [TenantSpec("alice"), TenantSpec("bob")]
    with QueryService(serving_scenario, specs, workers=3, capacity=16) as service:
        executions = run_mixed_workload(
            service,
            [("alice", "q1"), ("bob", "q2"), ("alice", "q4"), ("bob", "q2")],
        )
    assert all(execution.cost.total > 0 for execution in executions)
    totals = service.ledger_totals()
    assert totals["alice"] == pytest.approx(
        executions[0].cost.total + executions[2].cost.total
    )
    assert totals["bob"] == pytest.approx(
        executions[1].cost.total + executions[3].cost.total
    )


def test_concurrent_totals_match_serial_run_bit_identically(serving_scenario):
    """DESIGN invariant 12: per-tenant sums == a serial run, exactly.

    Cache off (hit patterns vary with interleaving); the in-process
    backend is deterministic, so each tenant's queries charge the same
    integer counts no matter how workers interleave.
    """
    submissions = [
        ("alice", "q1"),
        ("bob", "q2"),
        ("alice", "q4"),
        ("carol", "q2"),
        ("bob", "q4"),
        ("carol", "q1"),
    ]
    specs = [TenantSpec("alice"), TenantSpec("bob"), TenantSpec("carol")]
    with QueryService(serving_scenario, specs, workers=4, capacity=16) as service:
        run_mixed_workload(service, submissions)
    concurrent_totals = service.ledger_totals()

    # The serial oracle mirrors the service's wiring exactly: one
    # cumulative ledger per tenant, a fresh client per query.
    from repro.core.joinmethods import JoinContext, TupleSubstitution
    from repro.gateway.client import TextClient
    from repro.gateway.costs import CostLedger

    serial_ledgers = {}
    for tenant, query_id in submissions:
        ledger = serial_ledgers.setdefault(
            tenant, CostLedger(constants=serving_scenario.constants)
        )
        client = TextClient(serving_scenario.server, ledger=ledger)
        context = JoinContext(serving_scenario.catalog, client)
        TupleSubstitution().execute(serving_scenario.query(query_id), context)

    # Bitwise equality: the counts are integers, so the concurrent run's
    # cumulative per-tenant totals equal the serial run's exactly.
    for tenant, ledger in serial_ledgers.items():
        assert concurrent_totals[tenant] == ledger.total
        assert service.tenant(tenant).ledger.report() == ledger.report()


def test_quota_enforced_at_admission(serving_scenario):
    specs = [TenantSpec("metered", query_quota=2)]
    with QueryService(serving_scenario, specs, workers=2) as service:
        first = service.submit("metered", "q2")
        second = service.submit("metered", "q2")
        with pytest.raises(QuotaExceededError):
            service.submit("metered", "q2")
        first.result(timeout=60)
        second.result(timeout=60)
    report = service.tenant("metered").report()
    assert report["admitted"] == 2
    assert report["completed"] == 2
    assert report["rejected"] == 1


def test_budget_aborts_inflight_query_and_blocks_later_ones(serving_scenario):
    """The crossing charge stays; the query dies; later admissions refuse."""
    specs = [TenantSpec("broke", budget_seconds=1.0)]  # < one invocation
    with QueryService(serving_scenario, specs, workers=1) as service:
        ticket = service.submit("broke", "q2")
        with pytest.raises(BudgetExceededError):
            ticket.result(timeout=60)
        with pytest.raises(BudgetExceededError):
            service.submit("broke", "q2")
    state = service.tenant("broke")
    assert state.ledger.exhausted
    assert state.ledger.searches >= 1  # the crossing charge was kept
    assert state.failed == 1


def test_backpressure_rejects_with_retry_after(serving_scenario):
    """With workers busy and the queue full, submits bounce immediately."""
    specs = [TenantSpec("flood")]
    service = QueryService(serving_scenario, specs, workers=1, capacity=2)
    # NOT started: nothing drains, so the queue fills deterministically.
    service.submit("flood", "q2")
    service.submit("flood", "q2")
    with pytest.raises(AdmissionRejected) as rejection:
        service.submit("flood", "q2")
    assert rejection.value.retry_after > 0
    # The bounced submission consumed no quota slot.
    assert service.tenant("flood").admitted == 2
    assert service.tenant("flood").rejected == 1
    # Now serve the backlog and shut down cleanly.
    service.start()
    service.stop(drain=True)
    assert service.tenant("flood").completed == 2


def test_stop_without_drain_fails_pending_tickets(serving_scenario):
    specs = [TenantSpec("t")]
    service = QueryService(serving_scenario, specs, workers=1, capacity=8)
    tickets = [service.submit("t", "q2") for _ in range(3)]
    service.start()
    service.stop(drain=False)
    outcomes = []
    for ticket in tickets:
        try:
            ticket.result(timeout=10)
            outcomes.append("done")
        except ServingError:
            outcomes.append("stopped")
    # Everything resolved one way or the other — nobody hangs.
    assert len(outcomes) == 3
    assert "stopped" in outcomes or outcomes == ["done"] * 3


def test_metrics_snapshot_shape(serving_scenario):
    cache = GatewayCache()
    specs = [TenantSpec("alice"), TenantSpec("bob")]
    with QueryService(
        serving_scenario, specs, workers=2, capacity=8, cache=cache
    ) as service:
        run_mixed_workload(
            service, [("alice", "q2"), ("bob", "q2"), ("alice", "q2")]
        )
        snapshot = service.metrics_snapshot()
    assert snapshot["submitted"] == 3
    assert snapshot["completed"] == 3
    assert snapshot["failed"] == 0
    assert snapshot["qps"] > 0
    assert snapshot["latency_p99"] >= snapshot["latency_p50"] > 0
    assert 0.0 <= snapshot["cache_hit_rate"] <= 1.0
    assert snapshot["foreign_calls"] > 0
    assert snapshot["breaker_states"] == []  # in-process backend
    # The shared cache actually engaged across tenants: the repeated q2
    # searches hit after the first run primed it.
    assert snapshot["cache_hit_rate"] > 0


def test_unknown_tenant_rejected(serving_scenario):
    with QueryService(serving_scenario, [TenantSpec("a")], workers=1) as service:
        with pytest.raises(ServingError):
            service.submit("nobody", "q1")


def test_weighted_fairness_under_contention(serving_scenario):
    """With one worker and a full queue, dispatch order follows weights."""
    specs = [TenantSpec("heavy", weight=4.0), TenantSpec("light", weight=1.0)]
    service = QueryService(serving_scenario, specs, workers=1, capacity=40)
    tickets = {"heavy": [], "light": []}
    for _ in range(10):
        tickets["heavy"].append(service.submit("heavy", "q2"))
        tickets["light"].append(service.submit("light", "q2"))
    service.start()
    # When the 2nd light query finishes, at least 5 heavy ones must have
    # (the 4:1 stride puts ~8 heavy dispatches in the first 10).
    tickets["light"][1].result(timeout=120)
    heavy_done = sum(1 for t in tickets["heavy"] if t.done)
    assert heavy_done >= 5
    service.stop(drain=True)


def test_feedback_planning_records_method_runs(serving_scenario):
    """With a FeedbackStore wired in, methodless tickets are planned
    per query with feedback-blended statistics, every completed plan
    records its predicted-vs-measured cost, and the charges still land
    on the tenant's own ledger (DESIGN invariant 14: the store only
    reads the spend afterwards)."""
    from repro.core.feedback import FeedbackStore
    from repro.gateway.statistics import TextStatisticsRegistry

    store = FeedbackStore()
    specs = [TenantSpec("alice")]
    with QueryService(
        serving_scenario,
        specs,
        workers=2,
        feedback=store,
        statistics=TextStatisticsRegistry(),
    ) as service:
        executions = run_mixed_workload(
            service, [("alice", "q1"), ("alice", "q1"), ("alice", "q4")]
        )
    assert all(execution.cost.total > 0 for execution in executions)
    # Every planned query recorded one method run; repeated q1 runs
    # accumulate under the same (corpus, query, method) entry.
    report = store.report().for_kind("method")
    assert len(report) == 3
    assert all(record.unit == "seconds" for record in report.records)
    # The spend the store observed is exactly what the tenant was
    # charged - recording reads the ledger, it never writes it.
    observed = sum(record.actual for record in report.records)
    assert service.ledger_totals()["alice"] == pytest.approx(observed)


def test_feedback_planning_matches_serial_charges(serving_scenario):
    """Feedback-driven planning keeps the serial-identity contract: a
    plain serial execution of the same chosen methods costs exactly
    what the served run charged."""
    from repro.core.feedback import FeedbackStore
    from repro.core.inputs import build_cost_inputs
    from repro.core.optimizer.single_join import choose_join_method
    from repro.gateway.statistics import TextStatisticsRegistry

    store = FeedbackStore()
    registry = TextStatisticsRegistry()
    with QueryService(
        serving_scenario,
        [TenantSpec("alice")],
        workers=1,
        feedback=store,
        statistics=registry,
    ) as service:
        service.submit("alice", "q4").result(timeout=60)
    served_total = service.ledger_totals()["alice"]

    # Serial replay: same statistics registry (already primed), same
    # feedback-blended choice, fresh context.
    query = serving_scenario.q4()
    context = serving_scenario.context()
    inputs = build_cost_inputs(
        query, context, registry=registry, feedback=store
    )
    choice = choose_join_method(query, inputs)
    execution = choice.method.execute(query, context)
    # The served run paid for statistics gathering too; replaying with
    # the primed registry skips it, so compare the execution itself
    # against the store's recorded actual.
    method_runs = store.report().for_kind("method")
    assert len(method_runs) == 1
    assert execution.cost.total == method_runs.records[0].actual
    assert served_total >= execution.cost.total
