"""Unit tests for vocabulary and pool generators."""

import random
from collections import Counter

from repro.textsys.analysis import tokenize
from repro.workload.vocabulary import (
    BACKGROUND_WORDS,
    reserved_pool,
    zipf_text,
    zipf_word,
)


class TestReservedPool:
    def test_unique(self):
        pool = reserved_pool("x", 100, random.Random(1))
        assert len(set(pool)) == 100

    def test_single_token_values(self):
        for value in reserved_pool("x", 30, random.Random(2)):
            assert tokenize(value) == [value]

    def test_disjoint_across_prefixes(self):
        rng = random.Random(3)
        a = set(reserved_pool("aa", 50, rng))
        b = set(reserved_pool("bb", 50, rng))
        assert not a & b

    def test_disjoint_from_background(self):
        pool = set(reserved_pool("x", 50, random.Random(4)))
        assert not pool & set(BACKGROUND_WORDS)


class TestZipf:
    def test_words_come_from_vocabulary(self):
        rng = random.Random(5)
        for _ in range(100):
            assert zipf_word(rng, BACKGROUND_WORDS) in BACKGROUND_WORDS

    def test_distribution_is_skewed(self):
        rng = random.Random(6)
        counts = Counter(zipf_word(rng, BACKGROUND_WORDS) for _ in range(5000))
        frequencies = sorted(counts.values(), reverse=True)
        # The most common word is much more frequent than the median one.
        assert frequencies[0] > 5 * frequencies[len(frequencies) // 2]

    def test_zipf_text_length(self):
        rng = random.Random(7)
        text = zipf_text(rng, BACKGROUND_WORDS, 12)
        assert len(text.split()) == 12
