"""Unit tests for the synthetic corpus generator (exact planted stats)."""

import random

import pytest

from repro.errors import WorkloadError
from repro.gateway.sampling import exact_predicate_statistics
from repro.textsys.server import BooleanTextServer
from repro.workload.corpus import SyntheticCorpus
from repro.workload.vocabulary import reserved_pool


@pytest.fixture
def corpus():
    return SyntheticCorpus(200, seed=5)


class TestBackground:
    def test_document_count(self, corpus):
        store = corpus.build_store()
        assert len(store) == 200

    def test_fields_populated(self, corpus):
        store = corpus.build_store()
        document = store.get("doc00000")
        assert document.field("title")
        assert document.field("abstract")
        assert document.field("year")

    def test_author_field_empty_until_planted(self, corpus):
        store = corpus.build_store()
        assert all(not d.field("author") for d in store)

    def test_deterministic_per_seed(self):
        a = SyntheticCorpus(50, seed=9).build_store()
        b = SyntheticCorpus(50, seed=9).build_store()
        for docid in a.docids():
            assert a.get(docid).fields == b.get(docid).fields

    def test_invalid_document_count(self):
        with pytest.raises(WorkloadError):
            SyntheticCorpus(0)


class TestPlantPool:
    def test_exact_selectivity_and_fanout(self, corpus):
        rng = random.Random(1)
        pool = reserved_pool("tst", 20, rng)
        report = corpus.plant_pool(
            pool, "author", selectivity=0.5, conditional_fanout=3
        )
        assert report.selectivity == pytest.approx(0.5)
        assert report.fanout == pytest.approx(0.5 * 3)
        # Verify against the actual index.
        server = BooleanTextServer(corpus.build_store())
        stats = exact_predicate_statistics(server, "c", "author", pool)
        assert stats.selectivity == pytest.approx(0.5)
        assert stats.fanout == pytest.approx(1.5)

    def test_matched_values_override(self, corpus):
        pool = ["aaa1", "bbb2", "ccc3"]
        report = corpus.plant_pool(
            pool, "author", selectivity=0.0, conditional_fanout=2,
            matched_values=["bbb2"],
        )
        assert report.matched_values == ("bbb2",)

    def test_matched_values_must_be_in_pool(self, corpus):
        with pytest.raises(WorkloadError):
            corpus.plant_pool(
                ["a1"], "author", 1.0, 1, matched_values=["zz"]
            )

    def test_within_restricts_documents(self, corpus):
        universe = [0, 1, 2]
        report = corpus.plant_pool(
            ["val9"], "author", 1.0, 2, within=universe
        )
        for docs in report.documents_per_value.values():
            assert set(docs) <= set(universe)

    def test_fanout_exceeding_universe_rejected(self, corpus):
        with pytest.raises(WorkloadError):
            corpus.plant_pool(["v1"], "author", 1.0, 5, within=[0, 1])

    def test_invalid_selectivity(self, corpus):
        with pytest.raises(WorkloadError):
            corpus.plant_pool(["v1"], "author", 1.5, 1)

    def test_unknown_field(self, corpus):
        with pytest.raises(WorkloadError):
            corpus.plant_pool(["v1"], "nope", 0.5, 1)


class TestPlantPhrase:
    def test_exact_document_frequency(self, corpus):
        corpus.plant_phrase("belief update", "title", 7)
        server = BooleanTextServer(corpus.build_store())
        result = server.search("TI='belief update'")
        assert len(result) == 7

    def test_returns_chosen_documents(self, corpus):
        docs = corpus.plant_phrase("special marker", "title", 3)
        assert len(docs) == 3
        store = corpus.build_store()
        for doc in docs:
            assert "special marker" in store.get(f"doc{doc:05d}").field("title")

    def test_too_many_rejected(self, corpus):
        with pytest.raises(WorkloadError):
            corpus.plant_phrase("x", "title", 1000)


def test_pad_authors_fills_field(corpus):
    corpus.pad_authors(per_document=2, pool_size=10)
    store = corpus.build_store()
    assert all(d.field("author") for d in store)


def test_short_fields_default_excludes_abstract(corpus):
    store = corpus.build_store()
    assert "abstract" not in store.short_fields
    assert "title" in store.short_fields
