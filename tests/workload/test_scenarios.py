"""Tests for the canonical scenario builders (planted parameters hold)."""

import pytest

from repro.core.joinmethods.base import joining_rows
from repro.workload.scenarios import (
    build_chain_scenario,
    build_default_scenario,
    build_prl_scenario,
)


class TestDefaultScenario:
    def test_tables_exist(self, scenario):
        for name in ("student", "faculty", "project"):
            assert name in scenario.catalog

    def test_population_sizes(self, scenario):
        assert len(scenario.catalog.table("student")) == 330
        assert len(scenario.catalog.table("faculty")) == 20
        assert scenario.server.document_count == 4000

    def test_q1_joining_relation(self, scenario):
        context = scenario.context()
        rows = joining_rows(context, scenario.q1())
        assert len(rows) == scenario.parameters["q1"]["senior_ai_count"] == 80

    def test_q2_garcia_students(self, scenario):
        context = scenario.context()
        rows = joining_rows(context, scenario.q2())
        assert len(rows) == scenario.parameters["q2"]["garcia_students"] == 17

    def test_q3_nsf_rows(self, scenario):
        context = scenario.context()
        rows = joining_rows(context, scenario.q3())
        assert len(rows) == scenario.parameters["q3"]["nsf_rows"] == 109

    def test_q4_ds_students(self, scenario):
        context = scenario.context()
        rows = joining_rows(context, scenario.q4())
        assert len(rows) == scenario.parameters["q4"]["ds_students"] == 14

    def test_q1_selection_document_count(self, scenario):
        result = scenario.server.search("TI='belief update'")
        assert len(result) == scenario.parameters["q1"]["selection_documents"] == 4

    def test_q2_selection_document_count(self, scenario):
        result = scenario.server.search("TI='text'")
        assert len(result) == scenario.parameters["q2"]["selection_documents"] == 100

    def test_q4_advisor_selectivity_is_one(self, scenario):
        """Every DS advisor authors documents (s1 = 1, the Q4 regime)."""
        context = scenario.context()
        rows = joining_rows(context, scenario.q4())
        advisors = {row["student.advisor"] for row in rows}
        assert len(advisors) == 2
        for advisor in advisors:
            assert scenario.server.document_frequency("author", advisor) == 6

    def test_deterministic(self):
        a = build_default_scenario(seed=7)
        b = build_default_scenario(seed=7)
        assert a.parameters == b.parameters
        assert a.server.document_count == b.server.document_count

    def test_fresh_clients_have_fresh_ledgers(self, scenario):
        c1 = scenario.client()
        c1.search("TI='text'")
        c2 = scenario.client()
        assert c2.ledger.total == 0


class TestPrlScenario:
    def test_builds(self):
        prl_scenario, query = build_prl_scenario(
            enrollment_rows=200, course_rows=50, document_count=300
        )
        assert len(prl_scenario.catalog.table("enrollment")) == 200
        assert query.relations == ("enrollment", "course")


class TestChainScenario:
    def test_builds_n_relations(self):
        chain_scenario, query = build_chain_scenario(3)
        assert query.relations == ("r1", "r2", "r3")
        assert len(query.join_predicates) == 2
        for relation in query.relations:
            assert relation in chain_scenario.catalog

    def test_invalid_count(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            build_chain_scenario(0)
