"""Tests for scenario persistence (save_scenario / load_scenario_data)."""

import pytest

from repro.core.joinmethods import JoinContext, TupleSubstitution
from repro.errors import WorkloadError
from repro.gateway.client import TextClient
from repro.workload.io import load_scenario_data, save_scenario
from repro.workload.scenarios import build_default_scenario


@pytest.fixture(scope="module")
def small_scenario():
    return build_default_scenario(seed=3, document_count=400)


class TestRoundTrip:
    def test_tables_survive(self, small_scenario, tmp_path):
        save_scenario(small_scenario, tmp_path)
        catalog, server, parameters = load_scenario_data(tmp_path)
        for name in ("student", "faculty", "project"):
            original = small_scenario.catalog.table(name)
            loaded = catalog.table(name)
            assert len(loaded) == len(original)
            assert [r.values for r in loaded.rows()] == [
                r.values for r in original.rows()
            ]

    def test_corpus_and_limits_survive(self, small_scenario, tmp_path):
        save_scenario(small_scenario, tmp_path)
        catalog, server, parameters = load_scenario_data(tmp_path)
        assert server.document_count == small_scenario.server.document_count
        assert server.term_limit == small_scenario.server.term_limit

    def test_parameters_survive(self, small_scenario, tmp_path):
        save_scenario(small_scenario, tmp_path)
        _, _, parameters = load_scenario_data(tmp_path)
        assert parameters["q2"]["advisor"] == (
            small_scenario.parameters["q2"]["advisor"]
        )

    def test_queries_run_identically_after_reload(self, small_scenario, tmp_path):
        save_scenario(small_scenario, tmp_path)
        catalog, server, _ = load_scenario_data(tmp_path)
        query = small_scenario.q2()
        original = TupleSubstitution().execute(query, small_scenario.context())
        reloaded = TupleSubstitution().execute(
            query, JoinContext(catalog, TextClient(server))
        )
        assert original.result_keys() == reloaded.result_keys()
        assert original.cost.searches == reloaded.cost.searches


class TestErrors:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(WorkloadError, match="manifest"):
            load_scenario_data(tmp_path)

    def test_unknown_format(self, tmp_path):
        (tmp_path / "scenario.json").write_text('{"format": "other"}')
        with pytest.raises(WorkloadError, match="format"):
            load_scenario_data(tmp_path)
