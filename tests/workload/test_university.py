"""Unit tests for the university table builders."""

from repro.relational.catalog import Catalog
from repro.workload.university import (
    build_faculty_table,
    build_project_table,
    build_student_table,
)


def test_student_table():
    catalog = Catalog()
    table = build_student_table(
        catalog, [("kao", "databases", 2, "garcia", "cs")]
    )
    assert len(table) == 1
    row = table.rows()[0]
    assert row["student.name"] == "kao"
    assert row["student.year"] == 2
    assert "student" in catalog


def test_faculty_table():
    catalog = Catalog()
    table = build_faculty_table(catalog, [("garcia", "ee"), ("ullman", "cs")])
    assert len(table) == 2
    assert table.distinct_count("dept") == 2


def test_project_table():
    catalog = Catalog()
    table = build_project_table(
        catalog,
        [("condor", "NSF", "kao"), ("condor", "NSF", "pham")],
    )
    assert len(table) == 2
    assert table.distinct_count("name") == 1
    assert table.distinct_count("member") == 2


def test_custom_table_names():
    catalog = Catalog()
    build_student_table(catalog, [], table_name="s2")
    assert "s2" in catalog
