"""Retry policy, circuit breaker, and the degradation knob."""

import threading

import pytest

from repro.errors import GatewayError
from repro.remote.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    DegradationPolicy,
    RetryPolicy,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestRetryPolicy:
    def test_backoff_grows_exponentially_then_caps(self):
        policy = RetryPolicy(base_delay=0.01, multiplier=2.0, max_delay=0.05)
        assert policy.backoff(1) == pytest.approx(0.01)
        assert policy.backoff(2) == pytest.approx(0.02)
        assert policy.backoff(3) == pytest.approx(0.04)
        assert policy.backoff(4) == pytest.approx(0.05)  # capped
        assert policy.backoff(9) == pytest.approx(0.05)

    def test_exhausted_by_attempts(self):
        policy = RetryPolicy(max_attempts=3)
        assert not policy.exhausted(2, elapsed=0.0)
        assert policy.exhausted(3, elapsed=0.0)

    def test_exhausted_by_deadline(self):
        policy = RetryPolicy(max_attempts=100, deadline=1.0)
        assert not policy.exhausted(1, elapsed=0.5)
        assert policy.exhausted(1, elapsed=1.0)

    def test_validation(self):
        with pytest.raises(GatewayError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(GatewayError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(GatewayError):
            RetryPolicy(deadline=0.0)
        with pytest.raises(GatewayError):
            RetryPolicy().backoff(0)


class TestCircuitBreaker:
    def make(self, **kwargs):
        clock = FakeClock()
        defaults = dict(failure_threshold=3, recovery_time=10.0, clock=clock)
        defaults.update(kwargs)
        return CircuitBreaker(**defaults), clock

    def test_opens_after_consecutive_failures(self):
        breaker, _ = self.make()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow()

    def test_success_resets_the_failure_streak(self):
        breaker, _ = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED

    def test_half_open_after_recovery_then_closes_on_probe_success(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.state == BREAKER_HALF_OPEN
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # only one probe admitted
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow()
        # ... and the open period restarts from the probe failure.
        clock.advance(10.0)
        assert breaker.state == BREAKER_HALF_OPEN

    def test_transitions_recorded_and_drainable(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        moves = [(old, new) for _, old, new in breaker.transitions]
        assert moves == [
            (BREAKER_CLOSED, BREAKER_OPEN),
            (BREAKER_OPEN, BREAKER_HALF_OPEN),
            (BREAKER_HALF_OPEN, BREAKER_CLOSED),
        ]
        assert breaker.drain_transitions(2) == breaker.transitions[2:]

    def test_validation(self):
        with pytest.raises(GatewayError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(GatewayError):
            CircuitBreaker(recovery_time=-1.0)
        with pytest.raises(GatewayError):
            CircuitBreaker(half_open_probes=0)

    # -- half-open probe gating under concurrency (regression) ---------

    def _tripped_half_open(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.state == BREAKER_HALF_OPEN
        return breaker, clock

    def _hold_probe_open(self, breaker):
        """Admit a probe on a worker thread and keep it in flight."""
        admitted = []
        entered = threading.Event()
        release = threading.Event()
        outcome = {}

        def probe():
            admitted.append(breaker.allow())
            entered.set()
            release.wait(timeout=5.0)
            if outcome.get("success", True):
                breaker.record_success()
            else:
                breaker.record_failure()

        worker = threading.Thread(target=probe)
        worker.start()
        assert entered.wait(timeout=5.0)
        assert admitted == [True]
        return worker, release, outcome

    def test_stale_success_does_not_close_the_half_open_circuit(self):
        """Regression: a call admitted *before* the trip can report its
        success while the half-open probe is still in flight; that stale
        outcome must not close the circuit (it would admit the whole
        pool against a source only the probe is testing)."""
        breaker, _ = self._tripped_half_open()
        worker, release, _ = self._hold_probe_open(breaker)
        breaker.record_success()  # stale: this thread was never admitted
        assert breaker.state == BREAKER_HALF_OPEN
        assert not breaker.allow()  # the probe slot is still taken
        release.set()
        worker.join(timeout=5.0)
        assert breaker.state == BREAKER_CLOSED  # the probe itself ruled

    def test_stale_failure_does_not_reopen_under_the_probe(self):
        breaker, _ = self._tripped_half_open()
        worker, release, _ = self._hold_probe_open(breaker)
        breaker.record_failure()  # stale outcome from a pre-trip call
        assert breaker.state == BREAKER_HALF_OPEN
        release.set()
        worker.join(timeout=5.0)
        assert breaker.state == BREAKER_CLOSED

    def test_probe_failure_still_reopens_while_strays_report(self):
        breaker, _ = self._tripped_half_open()
        worker, release, outcome = self._hold_probe_open(breaker)
        breaker.record_success()  # stray success first...
        outcome["success"] = False  # ...then the probe itself fails
        release.set()
        worker.join(timeout=5.0)
        assert breaker.state == BREAKER_OPEN

    def test_exactly_one_concurrent_probe_admitted(self):
        breaker, _ = self._tripped_half_open()
        admitted = []
        lock = threading.Lock()
        barrier = threading.Barrier(8)

        def contend():
            barrier.wait(timeout=5.0)
            allowed = breaker.allow()
            with lock:
                admitted.append(allowed)

        threads = [threading.Thread(target=contend) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5.0)
        assert admitted.count(True) == 1


class TestDegradationPolicy:
    def test_healthy_by_default(self):
        policy = DegradationPolicy()
        assert not policy.degraded
        assert policy.effective_term_limit(70) == 70
        assert not policy.should_fallback("SJ")
        assert policy.shrink_applications == 0

    def test_forced_degradation_shrinks_with_floor(self):
        policy = DegradationPolicy(
            force_degraded=True, shrink_factor=0.5, min_term_budget=8
        )
        assert policy.effective_term_limit(70) == 35
        assert policy.effective_term_limit(10) == 8  # floored
        assert policy.shrink_applications == 2

    def test_fallback_applies_to_sj_family_only(self):
        policy = DegradationPolicy(force_degraded=True)
        assert policy.should_fallback("SJ")
        assert policy.should_fallback("SJ+RTP")
        assert not policy.should_fallback("TS")
        assert not policy.should_fallback("P+TS")
        assert policy.fallback_applications == 2

    def test_fallback_can_be_disabled(self):
        policy = DegradationPolicy(force_degraded=True, fallback_to_ts=False)
        assert not policy.should_fallback("SJ")

    def test_breaker_state_drives_degradation(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, recovery_time=5.0, clock=clock)
        policy = DegradationPolicy(breaker=breaker)
        assert not policy.degraded
        breaker.record_failure()
        assert policy.degraded  # open
        clock.advance(5.0)
        assert policy.degraded  # half-open still counts as degraded
        assert breaker.allow()
        breaker.record_success()
        assert not policy.degraded

    def test_validation(self):
        with pytest.raises(GatewayError):
            DegradationPolicy(shrink_factor=0.0)
        with pytest.raises(GatewayError):
            DegradationPolicy(min_term_budget=0)
