"""The sharded transport: scatter-gather correctness, failover, accounting."""

import pytest

from repro.errors import GatewayError, TextSystemError, UnknownDocumentError
from repro.gateway.cache import GatewayCache
from repro.gateway.client import TextClient
from repro.remote.channel import FaultProfile
from repro.remote.resilience import BREAKER_OPEN, RetryPolicy
from repro.remote.router import (
    ShardBackend,
    ShardedTextTransport,
    build_sharded_transport,
)
from repro.remote.transport import RemoteTextTransport
from repro.textsys.parser import parse_search
from repro.textsys.server import BooleanTextServer
from repro.textsys.sharding import partition_store

BELIEF = "TI='belief'"
SYSTEMS = "TI='systems'"
FILTERING = "AB='filtering'"

#: A link that rejects every frame: the primary is down hard.
DEAD = FaultProfile("dead", error_rate=1.0)


def make_sharded(source, shards=3, **kwargs):
    kwargs.setdefault("profile", "lan")
    kwargs.setdefault("time_scale", 0.0)
    return build_sharded_transport(source, shards, **kwargs)


def make_failover_transport(store, shards=2):
    """Every shard: a dead primary plus one healthy replica."""
    corpus = partition_store(store, shards)
    fast_retry = RetryPolicy(max_attempts=2, base_delay=0.001)
    backends = []
    for shard_id, shard_store in enumerate(corpus.stores):
        primary = RemoteTextTransport(
            BooleanTextServer(shard_store),
            profile=DEAD,
            time_scale=0.0,
            retry=fast_retry,
        )
        replica = RemoteTextTransport(
            BooleanTextServer(shard_store), profile="lan", time_scale=0.0
        )
        backends.append(ShardBackend(shard_id, primary, [replica]))
    return ShardedTextTransport(corpus, backends)


class TestScatterGather:
    def test_search_matches_single_server(self, tiny_store, tiny_server):
        transport = make_sharded(tiny_server)
        local = tiny_server.search(BELIEF)
        merged = transport.search(BELIEF)
        assert merged.docids == local.docids
        assert merged.postings_processed == local.postings_processed
        assert [d.fields for d in merged.documents] == [
            d.fields for d in local.documents
        ]

    def test_search_accepts_node_objects(self, tiny_server):
        transport = make_sharded(tiny_server)
        node = parse_search(SYSTEMS)
        assert transport.search(node).docids == tiny_server.search(node).docids

    def test_search_batch_merges_per_position(self, tiny_server):
        transport = make_sharded(tiny_server)
        batch = transport.search_batch([BELIEF, SYSTEMS, FILTERING])
        for result, expression in zip(batch, [BELIEF, SYSTEMS, FILTERING]):
            local = tiny_server.search(expression)
            assert result.docids == local.docids
            assert result.postings_processed == local.postings_processed

    def test_search_batch_validation(self, tiny_server):
        transport = make_sharded(tiny_server, batch_limit=2)
        with pytest.raises(TextSystemError):
            transport.search_batch([])
        with pytest.raises(TextSystemError):
            transport.search_batch([BELIEF, SYSTEMS, FILTERING])
        assert transport.batch_limit == 2

    def test_retrieve_routes_to_the_owning_shard_only(self, tiny_store):
        transport = make_sharded(tiny_store, shards=4)
        document = transport.retrieve("d2")
        assert document.fields["title"] == "Text retrieval systems"
        owner = transport.corpus.shard_of("d2")
        for backend in transport.backends:
            expected = 1 if backend.shard_id == owner else 0
            assert backend.primary.counters.long_documents == expected

    def test_retrieve_many_preserves_order_and_duplicates(self, tiny_store):
        transport = make_sharded(tiny_store, shards=3)
        docids = ["d3", "d1", "d4", "d1", "d2"]
        documents = transport.retrieve_many(docids)
        assert [d.docid for d in documents] == docids
        assert transport.retrieve_many([]) == []

    def test_unknown_docid_is_semantic_not_failover(self, tiny_store):
        transport = make_sharded(tiny_store, shards=2, replicas=1)
        with pytest.raises(UnknownDocumentError):
            transport.retrieve("nope")
        with pytest.raises(UnknownDocumentError):
            transport.retrieve_many(["d1", "nope"])
        assert transport.failovers == 0

    def test_document_frequency_sums_across_shards(self, tiny_server):
        transport = make_sharded(tiny_server, shards=3)
        for field, term in [("title", "belief"), ("abstract", "filtering")]:
            assert transport.document_frequency(
                field, term
            ) == tiny_server.document_frequency(field, term)


class TestMergedView:
    def test_meta_merges_across_shards(self, tiny_server):
        transport = make_sharded(tiny_server, shards=3)
        assert transport.document_count == 4
        assert transport.term_limit == tiny_server.term_limit
        assert transport.shard_count == 3
        assert transport.replica_count == 0
        version = transport.data_version
        fingerprint = transport.data_fingerprint
        assert len(fingerprint) == 3
        transport.corpus.stores[0].add_record(
            "d9", title="x", author="y", abstract="z", year="1999"
        )
        assert transport.data_version == version + 1
        assert transport.data_fingerprint != fingerprint

    def test_counters_merge_and_diff(self, tiny_server):
        transport = make_sharded(tiny_server, shards=3)
        before = transport.counters.snapshot()
        transport.search(BELIEF)
        transport.retrieve("d1")
        diff = transport.counters - before
        assert diff.searches == 3  # the scatter touched every shard
        assert diff.long_documents == 1
        assert transport.counters.as_dict()["searches"] == 3
        transport.counters.reset()
        assert transport.counters.searches == 0

    def test_backend_count_must_match_shard_count(self, tiny_store):
        corpus = partition_store(tiny_store, 3)
        with pytest.raises(GatewayError):
            ShardedTextTransport(corpus, [])

    def test_replicas_must_be_non_negative(self, tiny_store):
        with pytest.raises(GatewayError):
            build_sharded_transport(tiny_store, 2, replicas=-1)

    def test_index_requires_a_source_server(self, tiny_store, tiny_server):
        bare = make_sharded(tiny_store, shards=2)
        with pytest.raises(AttributeError):
            bare.index
        with_server = make_sharded(tiny_server, shards=2)
        assert with_server.index is tiny_server.index
        assert with_server.store is tiny_server.store

    def test_report_and_repr(self, tiny_server):
        transport = make_sharded(tiny_server, shards=2, replicas=1)
        transport.search(BELIEF)
        report = transport.report()
        assert report["shards"] == 2
        assert report["replicas_per_shard"] == 1
        assert report["scheme"] == "hash"
        assert len(report["per_shard"]) == 2
        assert report["totals"]["calls"] == transport.stats.calls
        assert "2 shards x 2 servers" in repr(transport)
        transport.close()


class TestClientIntegration:
    def test_ledger_total_bit_identical_to_single_server(self, tiny_store):
        from repro.textsys.batching import BatchingTextServer

        baseline = TextClient(BatchingTextServer(BooleanTextServer(tiny_store)))
        sharded = TextClient(make_sharded(tiny_store, shards=4))
        for client in (baseline, sharded):
            first = client.search(BELIEF)
            client.retrieve_many(first.docids)
            client.search_batch([SYSTEMS, FILTERING])
            client.retrieve("d2")
        assert sharded.ledger.total == baseline.ledger.total
        assert sharded.ledger.searches == baseline.ledger.searches
        assert sharded.ledger.long_documents == baseline.ledger.long_documents

    def test_cache_invalidates_when_one_shard_mutates(self, tiny_store):
        transport = make_sharded(tiny_store, shards=2)
        client = TextClient(transport, cache=GatewayCache())
        client.search(BELIEF)
        client.search(BELIEF)
        assert client.cache.hits == 1
        shard = transport.corpus.shard_of("d1")
        transport.corpus.stores[shard].add_record(
            "d9",
            title="Belief propagation",
            author="pearl",
            abstract="belief networks",
            year="1988",
        )
        for backend in transport.backends:
            backend.primary._server.index.rebuild()
        result = client.search(BELIEF)
        assert "d9" in {document.docid for document in result}
        assert client.cache.search.stats.invalidations == 1


class TestFailover:
    def test_replica_serves_when_the_primary_is_dead(self, tiny_store, tiny_server):
        transport = make_failover_transport(tiny_store)
        merged = transport.search(BELIEF)
        assert merged.docids == tiny_server.search(BELIEF).docids
        assert transport.failovers == len(transport.backends)
        waste, events = transport.drain_accounting()
        assert waste > 0  # the dead primary's retries were charged
        kinds = {event.kind for event in events}
        assert "failover" in kinds
        # Draining cleared the router's pending events.
        assert transport.drain_accounting()[1] == []

    def test_retrievals_fail_over_too(self, tiny_store):
        transport = make_failover_transport(tiny_store)
        documents = transport.retrieve_many(["d1", "d2", "d3", "d4"])
        assert [d.docid for d in documents] == ["d1", "d2", "d3", "d4"]
        assert all(backend.failovers >= 1 for backend in transport.backends)

    def test_open_breaker_fails_over_without_wire_calls(self, tiny_store):
        transport = make_failover_transport(tiny_store)
        transport.search(BELIEF)  # trips nothing yet, but wastes retries
        for backend in transport.backends:
            breaker = backend.primary.breaker
            for _ in range(breaker.failure_threshold):
                breaker.record_failure()
            assert breaker.state == BREAKER_OPEN
        attempts_before = [b.primary.stats.attempts for b in transport.backends]
        result = transport.search(SYSTEMS)
        assert result.docids == ("d1", "d2", "d4")
        attempts_after = [b.primary.stats.attempts for b in transport.backends]
        assert attempts_after == attempts_before  # refused locally, no wire

    def test_all_replicas_down_raises_the_last_error(self, tiny_store):
        corpus = partition_store(tiny_store, 2)
        fast_retry = RetryPolicy(max_attempts=2, base_delay=0.001)
        backends = []
        for shard_id, shard_store in enumerate(corpus.stores):
            transports = [
                RemoteTextTransport(
                    BooleanTextServer(shard_store),
                    profile=DEAD,
                    time_scale=0.0,
                    retry=fast_retry,
                )
                for _ in range(2)
            ]
            backends.append(ShardBackend(shard_id, transports[0], transports[1:]))
        transport = ShardedTextTransport(corpus, backends)
        with pytest.raises(Exception):
            transport.search(BELIEF)
        assert transport.failovers >= 1
