"""The fault-injecting channel: profiles, determinism, accounting."""

import pytest

from repro.errors import GatewayError, TransportDropped, TransportError
from repro.remote.channel import (
    FAULT_PROFILES,
    FaultInjectingChannel,
    FaultProfile,
    LoopbackChannel,
)


def echo(frame: str) -> str:
    return frame.upper()


class TestProfiles:
    def test_named_profiles_exist(self):
        assert set(FAULT_PROFILES) == {"lan", "wan", "flaky", "degraded"}
        assert FAULT_PROFILES["lan"].error_rate == 0.0
        assert FAULT_PROFILES["flaky"].error_rate > 0.0

    def test_validation(self):
        with pytest.raises(GatewayError):
            FaultProfile("bad", latency=-1.0)
        with pytest.raises(GatewayError):
            FaultProfile("bad", error_rate=1.5)
        with pytest.raises(GatewayError):
            FaultProfile("bad", drop_rate=-0.1)


class TestLoopback:
    def test_perfect_delivery(self):
        channel = LoopbackChannel(echo)
        assert channel.send("ping") == "PING"
        assert channel.stats.frames_sent == 1
        assert channel.stats.frames_delivered == 1


class TestFaultInjection:
    def test_reliable_profile_delivers(self):
        channel = FaultInjectingChannel(
            echo, FAULT_PROFILES["lan"], seed=1, time_scale=0.0
        )
        for _ in range(50):
            assert channel.send("x") == "X"
        stats = channel.stats
        assert stats.frames_delivered == 50
        assert stats.injected_errors == 0
        assert stats.injected_drops == 0
        assert stats.simulated_seconds > 0.0
        assert stats.slept_seconds == 0.0

    def _fault_sequence(self, seed):
        channel = FaultInjectingChannel(
            echo, FAULT_PROFILES["degraded"], seed=seed, time_scale=0.0
        )
        outcomes = []
        for _ in range(40):
            try:
                channel.send("x")
                outcomes.append("ok")
            except TransportDropped:
                outcomes.append("drop")
            except TransportError:
                outcomes.append("error")
        return outcomes

    def test_seeded_faults_replay(self):
        first = self._fault_sequence(seed=5)
        assert first == self._fault_sequence(seed=5)
        assert first != self._fault_sequence(seed=6)
        assert "error" in first and "drop" in first and "ok" in first

    def test_error_carries_latency_as_waste(self):
        profile = FaultProfile("allfail", latency=0.5, error_rate=1.0)
        channel = FaultInjectingChannel(echo, profile, seed=0, time_scale=0.0)
        with pytest.raises(TransportError) as excinfo:
            channel.send("x")
        assert excinfo.value.simulated_seconds == pytest.approx(0.5)
        assert channel.stats.injected_errors == 1

    def test_drop_waits_out_the_timeout(self):
        profile = FaultProfile("blackhole", drop_rate=1.0, timeout=0.75)
        channel = FaultInjectingChannel(echo, profile, seed=0, time_scale=0.0)
        with pytest.raises(TransportDropped) as excinfo:
            channel.send("x")
        assert excinfo.value.simulated_seconds == pytest.approx(0.75)
        assert channel.stats.simulated_seconds == pytest.approx(0.75)

    def test_time_scale_drives_real_sleeps(self):
        slept = []
        profile = FaultProfile("slow", latency=2.0)
        channel = FaultInjectingChannel(
            echo, profile, seed=0, time_scale=0.25, sleeper=slept.append
        )
        channel.send("x")
        assert slept == [pytest.approx(0.5)]
        assert channel.stats.simulated_seconds == pytest.approx(2.0)
        assert channel.stats.slept_seconds == pytest.approx(0.5)

    def test_negative_time_scale_rejected(self):
        with pytest.raises(GatewayError):
            FaultInjectingChannel(echo, FAULT_PROFILES["lan"], time_scale=-1.0)
