"""Wire-codec round trips: every node type, documents, results, frames."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import RemoteProtocolError
from repro.remote.codec import (
    decode_request,
    decode_response,
    document_from_wire,
    document_to_wire,
    encode_error,
    encode_request,
    encode_response,
    node_from_wire,
    node_to_wire,
    result_from_wire,
    result_to_wire,
)
from repro.textsys.documents import Document
from repro.textsys.query import (
    AndQuery,
    NotQuery,
    OrQuery,
    PhraseQuery,
    ProximityQuery,
    TermQuery,
    TruncatedQuery,
)
from repro.textsys.result import ResultSet

NODES = [
    TermQuery("title", "belief"),
    PhraseQuery("title", ("belief", "update")),
    TruncatedQuery("author", "grav"),
    ProximityQuery("abstract", "belief", "update", 3),
    AndQuery((TermQuery("title", "belief"), TermQuery("author", "gravano"))),
    OrQuery((TermQuery("title", "a"), TermQuery("title", "b"))),
    NotQuery(TermQuery("title", "unwanted")),
    AndQuery(
        (
            OrQuery((TermQuery("title", "a"), PhraseQuery("title", ("b", "c")))),
            NotQuery(TruncatedQuery("author", "sm")),
        )
    ),
]


class TestNodeRoundTrip:
    @pytest.mark.parametrize("node", NODES, ids=lambda n: type(n).__name__)
    def test_round_trip_preserves_node(self, node):
        wire = node_to_wire(node)
        back = node_from_wire(wire)
        assert back == node
        assert back.to_expression() == node.to_expression()
        assert back.term_count() == node.term_count()

    def test_unknown_type_rejected(self):
        with pytest.raises(RemoteProtocolError):
            node_from_wire({"type": "regex", "pattern": ".*"})

    def test_missing_keys_rejected(self):
        with pytest.raises(RemoteProtocolError):
            node_from_wire({"type": "term", "field": "title"})

    def test_unencodable_node_rejected(self):
        with pytest.raises(RemoteProtocolError):
            node_to_wire("TI='belief'")  # strings are parsed upstream


# A recursive strategy mirroring the expression grammar (normalized
# words only: the node constructors reject anything tokenize() changes).
_words = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=8)
_fields = st.sampled_from(["title", "author", "abstract", "year"])
_leaves = st.one_of(
    st.builds(TermQuery, _fields, _words),
    st.builds(
        PhraseQuery,
        _fields,
        st.lists(_words, min_size=2, max_size=4).map(tuple),
    ),
    st.builds(TruncatedQuery, _fields, _words),
    st.builds(
        ProximityQuery, _fields, _words, _words, st.integers(min_value=1, max_value=9)
    ),
)
_trees = st.recursive(
    _leaves,
    lambda children: st.one_of(
        st.builds(AndQuery, st.lists(children, min_size=2, max_size=3).map(tuple)),
        st.builds(OrQuery, st.lists(children, min_size=2, max_size=3).map(tuple)),
        st.builds(NotQuery, children),
    ),
    max_leaves=12,
)


@given(_trees)
def test_arbitrary_trees_round_trip(node):
    back = node_from_wire(node_to_wire(node))
    assert back == node
    assert back.to_expression() == node.to_expression()


class TestDocumentAndResult:
    def test_document_round_trip(self):
        document = Document("d7", {"title": "belief update", "year": "may 1993"})
        back = document_from_wire(document_to_wire(document))
        assert back.docid == document.docid
        assert dict(back.fields) == dict(document.fields)

    def test_result_round_trip(self):
        result = ResultSet(
            docids=("d1", "d3"),
            documents=(
                Document("d1", {"title": "one"}),
                Document("d3", {"title": "three"}),
            ),
            postings_processed=17,
        )
        back = result_from_wire(result_to_wire(result))
        assert back.docids == result.docids
        assert back.postings_processed == result.postings_processed
        assert [d.docid for d in back.documents] == ["d1", "d3"]

    def test_malformed_document_rejected(self):
        with pytest.raises(RemoteProtocolError):
            document_from_wire({"fields": {}})

    def test_malformed_result_rejected(self):
        with pytest.raises(RemoteProtocolError):
            result_from_wire({"docids": ["d1"]})


class TestFrames:
    def test_request_round_trip(self):
        frame = encode_request(5, "search", {"query": {"type": "term"}})
        assert decode_request(frame) == (5, "search", {"query": {"type": "term"}})

    def test_success_response_round_trip(self):
        frame = encode_response(9, {"result": []})
        assert decode_response(frame) == (9, True, {"result": []})

    def test_error_response_round_trip(self):
        frame = encode_error(4, "SearchLimitExceeded", "too many terms")
        frame_id, ok, error = decode_response(frame)
        assert (frame_id, ok) == (4, False)
        assert error == {"type": "SearchLimitExceeded", "message": "too many terms"}

    def test_garbage_frames_rejected(self):
        with pytest.raises(RemoteProtocolError):
            decode_request("not json")
        with pytest.raises(RemoteProtocolError):
            decode_response("{}")

    def test_unencodable_payload_rejected(self):
        with pytest.raises(RemoteProtocolError):
            encode_request(1, "search", {"query": object()})
