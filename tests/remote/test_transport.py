"""The remote transport end to end: correctness, retries, accounting."""

import pytest

from repro.errors import (
    CircuitOpenError,
    RemoteProtocolError,
    SearchLimitExceeded,
    TextSystemError,
    TransportError,
)
from repro.gateway.client import TextClient
from repro.gateway.tracing import CallTracer
from repro.remote.channel import (
    FaultInjectingChannel,
    FaultProfile,
    LoopbackChannel,
)
from repro.remote.codec import encode_response
from repro.remote.endpoint import TextServerEndpoint
from repro.remote.resilience import CircuitBreaker, RetryPolicy
from repro.remote.transport import RemoteTextTransport, install_transport
from repro.textsys.batching import BatchingTextServer
from repro.textsys.parser import parse_search
from repro.textsys.server import BooleanTextServer

BELIEF = "TI='belief'"
UPDATE = "TI='update'"
SYSTEMS = "TI='systems'"


def make_transport(server, profile="lan", **kwargs):
    kwargs.setdefault("time_scale", 0.0)
    return RemoteTextTransport(server, profile=profile, **kwargs)


class TestApiEquivalence:
    """Every server operation answers identically through the wire."""

    def test_search(self, tiny_server):
        transport = make_transport(tiny_server)
        local = tiny_server.search(BELIEF)
        remote = transport.search(BELIEF)
        assert remote.docids == local.docids
        assert remote.postings_processed == local.postings_processed
        assert [d.fields for d in remote.documents] == [
            d.fields for d in local.documents
        ]

    def test_search_accepts_node_objects(self, tiny_server):
        transport = make_transport(tiny_server)
        node = parse_search(BELIEF)
        assert transport.search(node).docids == tiny_server.search(node).docids

    def test_retrieve_and_retrieve_many(self, tiny_server):
        transport = make_transport(tiny_server, batch_frame_size=2)
        assert transport.retrieve("d1").fields == tiny_server.retrieve("d1").fields
        docids = ["d1", "d2", "d3", "d4", "d1"]
        remote = transport.retrieve_many(docids)
        assert [d.docid for d in remote] == docids  # order preserved across frames

    def test_document_frequency_and_meta(self, tiny_server):
        transport = make_transport(tiny_server)
        assert transport.document_frequency("title", "belief") == (
            tiny_server.document_frequency("title", "belief")
        )
        assert transport.document_count == tiny_server.document_count
        assert transport.term_limit == tiny_server.term_limit
        assert transport.data_version == tiny_server.data_version

    def test_meta_cached_but_data_version_fresh(self, tiny_server):
        transport = make_transport(tiny_server)
        transport.document_count
        frames_after_first = transport.channel.stats.frames_sent
        transport.term_limit  # served from the cached meta frame
        assert transport.channel.stats.frames_sent == frames_after_first
        transport.data_version  # always refetched: it is what moves
        assert transport.channel.stats.frames_sent == frames_after_first + 1

    def test_server_errors_cross_the_wire_typed(self, tiny_store):
        server = BooleanTextServer(tiny_store, term_limit=1)
        transport = make_transport(server)
        with pytest.raises(SearchLimitExceeded):
            transport.search("TI='belief' AND TI='update'")

    def test_batch_validation(self, tiny_server):
        transport = make_transport(tiny_server, batch_limit=3)
        with pytest.raises(TextSystemError):
            transport.search_batch([])
        with pytest.raises(TextSystemError):
            transport.search_batch([BELIEF] * 4)

    def test_search_batch_matches_serial_searches(self, tiny_server):
        transport = make_transport(tiny_server, batch_frame_size=2)
        queries = [BELIEF, UPDATE, SYSTEMS]
        batched = transport.search_batch(queries)
        assert [r.docids for r in batched] == [
            tiny_server.search(q).docids for q in queries
        ]

    def test_pooled_dispatch_matches_serial(self, tiny_server):
        queries = [BELIEF, UPDATE, SYSTEMS, BELIEF, UPDATE, SYSTEMS]
        serial = make_transport(tiny_server, batch_frame_size=1)
        pooled = make_transport(tiny_server, batch_frame_size=1, pool_size=4)
        try:
            assert [r.docids for r in pooled.search_batch(queries)] == [
                r.docids for r in serial.search_batch(queries)
            ]
        finally:
            pooled.close()

    def test_frame_correlation_enforced(self):
        channel = LoopbackChannel(lambda frame: encode_response(999, {}))
        transport = RemoteTextTransport(channel=channel)
        with pytest.raises(RemoteProtocolError):
            transport.search(BELIEF)


class FailNthOnce(LoopbackChannel):
    """Deliver everything except the Nth frame's first attempt."""

    def __init__(self, handler, fail_at):
        super().__init__(handler)
        self.fail_at = fail_at
        self.failed = False

    def send(self, frame):
        if not self.failed and self.stats.frames_sent + 1 == self.fail_at:
            self.failed = True
            self.stats.frames_sent += 1
            error = TransportError("scripted failure")
            error.simulated_seconds = 0.5
            raise error
        return super().send(frame)


class TestRetries:
    def test_only_the_failed_frame_is_resent(self, tiny_server):
        # 6 queries in frames of 2 -> frames 1..3; frame 2 fails once.
        channel = FailNthOnce(TextServerEndpoint(tiny_server).handle, fail_at=2)
        transport = RemoteTextTransport(channel=channel, batch_frame_size=2)
        queries = [BELIEF, UPDATE, SYSTEMS, BELIEF, UPDATE, SYSTEMS]
        results = transport.search_batch(queries)
        assert [r.docids for r in results] == [
            tiny_server.search(q).docids for q in queries
        ]
        # 3 frames + 1 retry travelled; the server answered exactly 3.
        assert channel.stats.frames_sent == 4
        assert channel.stats.frames_delivered == 3
        assert transport.stats.retries == 1
        assert transport.stats.seconds_retried > 0.0

    def test_waste_accumulates_failed_latency_plus_backoff(self, tiny_server):
        channel = FailNthOnce(TextServerEndpoint(tiny_server).handle, fail_at=1)
        retry = RetryPolicy(base_delay=0.25)
        transport = RemoteTextTransport(channel=channel, retry=retry)
        transport.search(BELIEF)
        waste, events = transport.drain_accounting()
        assert waste == pytest.approx(0.5 + 0.25)  # failed wire time + backoff
        assert [event.kind for event in events] == ["retry"]
        # Draining clears the pending accumulators.
        assert transport.drain_accounting() == (0.0, [])

    def test_gives_up_after_max_attempts(self, tiny_server):
        always_down = FaultInjectingChannel(
            TextServerEndpoint(tiny_server).handle,
            FaultProfile("down", error_rate=1.0),
            seed=0,
            time_scale=0.0,
        )
        transport = RemoteTextTransport(
            channel=always_down,
            retry=RetryPolicy(max_attempts=3, base_delay=0.0),
            breaker=CircuitBreaker(failure_threshold=100),
        )
        with pytest.raises(TransportError):
            transport.search(BELIEF)
        assert transport.stats.attempts == 3
        assert transport.stats.failures == 1


class TestCircuitBreaker:
    def test_open_circuit_refuses_without_touching_the_wire(self, tiny_server):
        always_down = FaultInjectingChannel(
            TextServerEndpoint(tiny_server).handle,
            FaultProfile("down", error_rate=1.0),
            seed=0,
            time_scale=0.0,
        )
        transport = RemoteTextTransport(
            channel=always_down,
            retry=RetryPolicy(max_attempts=1),
            breaker=CircuitBreaker(failure_threshold=1, recovery_time=60.0),
        )
        with pytest.raises(TransportError):
            transport.search(BELIEF)
        frames_on_wire = always_down.stats.frames_sent
        with pytest.raises(CircuitOpenError):
            transport.search(BELIEF)
        assert always_down.stats.frames_sent == frames_on_wire
        assert transport.stats.breaker_trips == 1
        _, events = transport.drain_accounting()
        kinds = {event.kind for event in events}
        assert "breaker" in kinds

    def test_report_shape(self, tiny_server):
        transport = make_transport(tiny_server)
        transport.search(BELIEF)
        report = transport.report()
        assert report["calls"] == 1
        assert report["breaker_state"] == "closed"
        assert "channel" in report and report["channel"]["frames_delivered"] == 1

    def test_concurrent_transition_drain_never_duplicates_or_drops(
        self, tiny_server
    ):
        """Regression: the transport's transition drain (cursor read +
        drain + advance) must be one atomic step.  Racing pool workers
        used to read the same cursor, drain the same transitions twice,
        and advance the cursor past transitions nobody had drained."""
        import threading
        import time as _time

        class SlowDrainBreaker(CircuitBreaker):
            """Widens the read-drain-advance window to force the race."""

            def drain_transitions(self, seen):
                _time.sleep(0.002)
                return super().drain_transitions(seen)

        breaker = SlowDrainBreaker(failure_threshold=1, recovery_time=0.0)
        transport = make_transport(tiny_server, breaker=breaker)
        for _ in range(4):  # closed->open, open->half-open, half-open->closed
            breaker.record_failure()
            assert breaker.allow()
            breaker.record_success()
        transitions_now = len(breaker.transitions)

        threads = [
            threading.Thread(target=transport._note_breaker) for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5.0)

        _, events = transport.drain_accounting()
        noted = [event for event in events if event.kind == "breaker"]
        expected = [
            f"{old} -> {new}"
            for _, old, new in breaker.transitions[:transitions_now]
        ]
        assert [event.detail for event in noted] == expected  # no dupes
        assert transport.stats.breaker_trips == 4

        # And nothing was lost to an over-advanced cursor: transitions
        # recorded after the contention drain exactly once.
        breaker.record_failure()
        transport._note_breaker()
        _, events = transport.drain_accounting()
        late = [event.detail for event in events if event.kind == "breaker"]
        assert late == ["closed -> open"]


class TestClientIntegration:
    """The acceptance criteria: same answers, same priced totals."""

    def run_workload(self, client):
        client.search(BELIEF)
        client.search_batch([UPDATE, SYSTEMS, BELIEF, UPDATE])
        client.probe(SYSTEMS)
        client.retrieve_many(["d1", "d3"])
        return client

    def test_flaky_transport_same_results_and_totals(self, tiny_store):
        local_server = BatchingTextServer(BooleanTextServer(tiny_store))
        local = self.run_workload(TextClient(local_server))

        remote_server = BooleanTextServer(tiny_store)
        transport = make_transport(remote_server, profile="flaky", seed=11)
        remote = self.run_workload(TextClient(transport))

        assert remote.ledger.total == local.ledger.total  # bit-identical
        assert remote.ledger.searches == local.ledger.searches
        assert remote.ledger.long_documents == local.ledger.long_documents
        assert remote.ledger.seconds_retried >= 0.0
        assert local.ledger.seconds_retried == 0.0

    def test_flaky_transport_wastes_seconds_outside_total(self, tiny_store):
        server = BooleanTextServer(tiny_store)
        transport = make_transport(server, profile="flaky", seed=2)
        client = TextClient(transport)
        for _ in range(10):
            client.search(BELIEF)
        assert client.ledger.seconds_retried > 0.0
        # The Section 4.1 identity prices answered work only.
        constants = client.ledger.constants
        assert client.ledger.total == pytest.approx(
            constants.invocation * client.ledger.searches
            + constants.per_posting * client.ledger.postings_processed
            + constants.short_form * client.ledger.short_documents
        )

    def test_retry_events_become_spans_but_not_call_log(self, tiny_store):
        server = BooleanTextServer(tiny_store)
        transport = make_transport(server, profile="flaky", seed=2)
        client = TextClient(transport, tracer=CallTracer(enabled=True))
        for _ in range(10):
            client.search(BELIEF)
        kinds = {span.kind for span in client.tracer.spans}
        assert "retry" in kinds
        assert all(
            call.expression == "title='belief'" for call in client.call_log
        )  # retry spans stay out of the legacy view

    def test_install_transport(self, tiny_server):
        client = TextClient(tiny_server)
        transport = make_transport(tiny_server)
        install_transport(client, transport)
        assert client.server is transport
        assert not client.search(BELIEF).is_empty
