"""The vector backend through the transport stack.

The ranked source must be reachable exactly like the Boolean one: the
codec carries ``VectorQuery`` and scored result sets, the endpoint
advertises its ``source_kind``, and — the invariant that matters for
attribution — the same query sequence charges the same ledger whether
the backend is in-process, remote, or sharded.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RemoteProtocolError
from repro.gateway.client import TextClient
from repro.gateway.costs import VECTOR_CONSTANTS
from repro.remote.codec import (
    node_from_wire,
    node_to_wire,
    result_from_wire,
    result_to_wire,
)
from repro.remote.router import build_sharded_transport
from repro.remote.transport import RemoteTextTransport
from repro.textsys.documents import Document, DocumentStore
from repro.textsys.result import ResultSet
from repro.textsys.vector import VectorQuery
from repro.textsys.vectorserver import VectorTextServer


@pytest.fixture
def store() -> DocumentStore:
    store = DocumentStore(
        ["title", "abstract"], short_fields=["title", "abstract"]
    )
    store.add_record("d1", title="belief update", abstract="belief revision systems")
    store.add_record("d2", title="query optimization", abstract="join query plans")
    store.add_record("d3", title="text retrieval", abstract="ranked text search")
    store.add_record("d4", title="belief networks", abstract="probabilistic belief")
    store.add_record("d5", title="empty", abstract="")
    return store


@pytest.fixture
def server(store) -> VectorTextServer:
    return VectorTextServer(store, "abstract")


def make_remote(server) -> RemoteTextTransport:
    return RemoteTextTransport(server, profile="lan", time_scale=0.0)


class TestCodec:
    def test_vector_query_roundtrip(self):
        query = VectorQuery(
            "abstract", ("belief", "revision"), top_k=7, threshold=0.25
        )
        wire = node_to_wire(query)
        assert wire["type"] == "vector"
        decoded = node_from_wire(wire)
        assert decoded == query

    def test_unbounded_top_k_travels_as_null(self):
        query = VectorQuery("abstract", ("belief",), top_k=None)
        wire = node_to_wire(query)
        assert wire["top_k"] is None
        assert node_from_wire(wire).top_k is None

    def test_malformed_vector_wire_rejected(self):
        with pytest.raises(RemoteProtocolError):
            node_from_wire({"type": "vector", "field": "abstract"})

    def test_scored_result_roundtrip(self):
        result = ResultSet(
            docids=("d1", "d2"),
            documents=(
                Document("d1", {"title": "a"}),
                Document("d2", {"title": "b"}),
            ),
            postings_processed=4,
            scores=(0.9, 0.4),
        )
        wire = result_to_wire(result)
        assert wire["scores"] == [0.9, 0.4]
        decoded = result_from_wire(wire)
        assert decoded.scores == (0.9, 0.4)
        assert decoded.docids == result.docids

    def test_boolean_results_omit_the_scores_key(self):
        """Old (pre-vector) frames stay decodable: no key, empty scores."""
        result = ResultSet(
            docids=("d1",),
            documents=(Document("d1", {"title": "a"}),),
            postings_processed=1,
        )
        wire = result_to_wire(result)
        assert "scores" not in wire
        assert result_from_wire(wire).scores == ()


class TestRemoteTransport:
    def test_meta_advertises_source_kind(self, server):
        remote = make_remote(server)
        assert remote.source_kind == "vector"

    def test_remote_search_matches_in_process(self, server):
        remote = make_remote(server)
        for query in (
            VectorQuery("abstract", ("belief",), top_k=2),
            VectorQuery("abstract", ("belief", "query"), top_k=None),
            VectorQuery("abstract", (), top_k=None, threshold=-1.0),
        ):
            local = server.search(query)
            over_wire = remote.search(query)
            assert over_wire.docids == local.docids
            assert over_wire.scores == local.scores
            assert over_wire.postings_processed == local.postings_processed

    def test_remote_document_frequency_matches(self, server):
        remote = make_remote(server)
        for term in ("belief", "query", "zzz"):
            assert remote.document_frequency(
                "abstract", term
            ) == server.document_frequency("abstract", term)


class TestShardedTransport:
    def test_sharded_search_matches_single_server(self, store):
        reference = VectorTextServer(store, "abstract")
        sharded = build_sharded_transport(
            VectorTextServer(store, "abstract"),
            3,
            profile="lan",
            time_scale=0.0,
        )
        assert sharded.source_kind == "vector"
        for query in (
            VectorQuery("abstract", ("belief",), top_k=2),
            VectorQuery("abstract", ("belief", "text"), top_k=None),
        ):
            merged = sharded.search(query)
            single = reference.search(query)
            assert merged.docids == single.docids
            assert merged.scores == single.scores


class TestChargeIdentity:
    """Invariant 15's transport half: the deployment shape of a backend
    never changes what a query sequence costs its ledger."""

    @settings(max_examples=20, deadline=None)
    @given(
        queries=st.lists(
            st.tuples(
                st.lists(
                    st.sampled_from(
                        ["belief", "query", "text", "systems", "zzz"]
                    ),
                    min_size=1,
                    max_size=3,
                ),
                st.sampled_from([1, 3, None]),
            ),
            min_size=1,
            max_size=4,
        ),
        shard_count=st.integers(min_value=1, max_value=3),
    )
    def test_ledger_total_is_deployment_invariant(self, queries, shard_count):
        store = DocumentStore(["abstract"], short_fields=["abstract"])
        store.add_record("d1", abstract="belief revision systems")
        store.add_record("d2", abstract="join query plans")
        store.add_record("d3", abstract="ranked text search systems")
        store.add_record("d4", abstract="probabilistic belief")
        backends = [
            VectorTextServer(store, "abstract"),
            make_remote(VectorTextServer(store, "abstract")),
            build_sharded_transport(
                VectorTextServer(store, "abstract"),
                shard_count,
                profile="lan",
                time_scale=0.0,
            ),
        ]
        totals = []
        for backend in backends:
            client = TextClient(backend, constants=VECTOR_CONSTANTS)
            for terms, top_k in queries:
                client.search(
                    VectorQuery("abstract", tuple(terms), top_k=top_k)
                )
            totals.append(client.ledger.total)
        assert totals[0] == pytest.approx(totals[1])
        assert totals[0] == pytest.approx(totals[2])
