"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_figures(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1(A)" in out
        assert "Figure 1(B)" in out
        assert "Figure 2" in out

    def test_enumeration(self, capsys):
        assert main(["enumeration"]) == 0
        out = capsys.readouterr().out
        assert "enumeration effort" in out
        assert "prl" in out

    def test_table2_with_custom_seed(self, capsys):
        assert main(["table2", "--seed", "9"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "P(name)+TS" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])


@pytest.mark.slow
class TestCliSlowPaths:
    def test_multijoin(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["multijoin"]) == 0
        out = capsys.readouterr().out
        assert "PrL showcase" in out
        assert "Probe(" in out

    def test_ranking(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["ranking"]) == 0
        out = capsys.readouterr().out
        assert "does the cost model predict the ranking?" in out
