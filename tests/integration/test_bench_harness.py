"""Tests for the benchmark harness and reporting utilities."""

import pytest

from repro.bench.harness import (
    fig1a_series,
    fig1b_series,
    fig2_grid,
    kendall_tau,
    make_inputs,
    run_methods,
)
from repro.bench.reporting import ascii_table, format_value, series_block


class TestReporting:
    def test_format_value(self):
        assert format_value(None) == "-"
        assert format_value(True) == "yes"
        assert format_value(False) == "no"
        assert format_value(1.234) == "1.23"
        assert format_value(1234.5) == "1234"
        assert format_value("x") == "x"

    def test_ascii_table_alignment(self):
        table = ascii_table(["a", "long header"], [[1, 2], [333, 4]])
        lines = table.splitlines()
        assert len({len(line) for line in lines}) == 1  # all equal width
        assert "long header" in lines[0]

    def test_ascii_table_title(self):
        table = ascii_table(["x"], [[1]], title="My Title")
        assert table.splitlines()[0] == "My Title"

    def test_series_block(self):
        block = series_block("TS", [1, 2], [10.0, 20.0], "s1", "cost")
        assert "TS" in block
        assert "10.00" in block


class TestKendallTau:
    def test_identical_orders(self):
        assert kendall_tau(["a", "b", "c"], ["a", "b", "c"]) == 1.0

    def test_reversed_orders(self):
        assert kendall_tau(["a", "b", "c"], ["c", "b", "a"]) == -1.0

    def test_single_item(self):
        assert kendall_tau(["a"], ["a"]) == 1.0

    def test_one_swap(self):
        assert kendall_tau(["a", "b", "c"], ["b", "a", "c"]) == pytest.approx(1 / 3)


class TestMakeInputs:
    def test_round_trip(self):
        inputs = make_inputs(
            tuple_count=50,
            stats={"r.x": (0.3, 1.5)},
            distinct={"r.x": 7},
            document_count=123,
            term_limit=9,
            g=2,
        )
        assert inputs.tuple_count == 50
        assert inputs.document_count == 123
        assert inputs.term_limit == 9
        assert inputs.g == 2
        assert inputs.distinct(["r.x"]) == 7
        assert inputs.predicate_stats["r.x"].selectivity == 0.3


class TestSweeps:
    def test_fig1a_series_shapes(self):
        series = fig1a_series([0.0, 0.5, 1.0])
        assert set(series) == {"TS", "P1+TS", "P1+RTP", "SJ+RTP"}
        assert all(len(values) == 3 for values in series.values())

    def test_fig1b_series_shapes(self):
        series = fig1b_series([0.1, 1.0])
        assert all(len(values) == 2 for values in series.values())

    def test_fig2_grid_dimensions(self):
        grid = fig2_grid([0.1, 0.9], [0.1, 0.5, 0.9])
        assert len(grid) == 3
        assert all(len(row) == 2 for row in grid)
        assert all(winner in ("TS", "P+TS") for row in grid for winner in row)


class TestRunMethods:
    def test_detects_disagreement_would_raise(self, scenario):
        """run_methods asserts cross-method equality internally; a normal
        run must therefore complete without raising."""
        runs = run_methods(scenario, "q1")
        assert {run.method for run in runs} == {"TS", "RTP", "SJ+RTP"}
        assert all(run.measured_cost > 0 for run in runs)

    def test_predictions_attached(self, scenario):
        runs = run_methods(scenario, "q1")
        assert all(run.predicted_cost is not None for run in runs)

    def test_without_predictions(self, scenario):
        runs = run_methods(scenario, "q1", with_predictions=False)
        assert all(run.predicted_cost is None for run in runs)
