"""End-to-end disk-index smoke: the CI gate for DESIGN invariant 13.

Builds a small synthetic corpus, persists it (gzipped), streams it into
a disk index file, then runs the same query workload through a metered
client against the in-memory server and the disk-backed server —
results, server counters, and priced ledger totals must be identical.
Also drives the ``repro index build/stats/query`` CLI against the same
artifacts.
"""

import pytest

from repro.cli import main as cli_main
from repro.gateway.client import TextClient
from repro.textsys.diskindex import DiskInvertedIndex, build_disk_index
from repro.textsys.documents import DocumentStore
from repro.textsys.persistence import load_store, save_store
from repro.textsys.server import BooleanTextServer
from repro.workload.corpus import iter_synthetic_documents

DOC_COUNT = 400

QUERIES = [
    "TI='algorithm'",
    "AB='database' and AB='query'",
    "TI='system' or AB='index'",
    "AB='retrieval' and not TI='algorithm'",
]


@pytest.fixture(scope="module")
def corpus_store():
    store = DocumentStore(["title", "abstract"], short_fields=["title"])
    for document in iter_synthetic_documents(DOC_COUNT, seed=11):
        store.add(document)
    return store


@pytest.fixture(scope="module")
def artifacts(corpus_store, tmp_path_factory):
    """(store path, index path): the corpus persisted both ways."""
    tmp = tmp_path_factory.mktemp("smoke")
    store_path = tmp / "corpus.jsonl.gz"
    save_store(corpus_store, store_path)
    index_path = build_disk_index(
        corpus_store, corpus_store.field_names, tmp / "corpus.idx"
    )
    return store_path, index_path


def run_workload(server):
    client = TextClient(server)
    results = [client.search(expression) for expression in QUERIES]
    return (
        [result.docids for result in results],
        [result.postings_processed for result in results],
        server.counters.as_dict(),
        client.ledger.total,
    )


def test_queries_find_documents(corpus_store):
    """The workload is non-trivial: at least one query matches something."""
    server = BooleanTextServer(corpus_store)
    assert any(server.search(expression).docids for expression in QUERIES)


@pytest.mark.parametrize("mode", ["reference", "optimized"])
def test_disk_server_identical_to_memory_server(
    corpus_store, artifacts, mode
):
    store_path, index_path = artifacts
    reloaded = load_store(store_path)
    memory = run_workload(BooleanTextServer(reloaded, engine_mode=mode))
    with DiskInvertedIndex(index_path, cache_budget=1 << 20) as index:
        disk = run_workload(
            BooleanTextServer(reloaded, engine_mode=mode, index=index)
        )
    assert disk == memory


def test_cold_and_warm_cache_charges_identical(corpus_store, artifacts):
    """Physical cache state never leaks into the cost model: a second
    pass over the same workload charges exactly the same increments."""
    _, index_path = artifacts
    with DiskInvertedIndex(index_path) as index:
        server = BooleanTextServer(corpus_store, index=index)
        cold = run_workload(server)
        pages_cold = index.pages_read
        io_cold = index.io_stats()["block_fetches"]
        warm = run_workload(server)
        assert warm[0] == cold[0]  # same docids
        assert warm[1] == cold[1]  # same postings charges
        assert index.pages_read == 2 * pages_cold  # same page charges again
        # ... while physically the warm pass was mostly cache hits.
        assert index.io_stats()["cache"]["hits"] > 0
        assert index.io_stats()["block_fetches"] <= 2 * io_cold


def test_cli_build_stats_query(artifacts, tmp_path, capsys):
    store_path, _ = artifacts
    out_path = tmp_path / "cli.idx"
    assert (
        cli_main(
            ["index", "build", "--store", str(store_path), "--out", str(out_path)]
        )
        == 0
    )
    assert f"indexed {DOC_COUNT} documents" in capsys.readouterr().out

    assert cli_main(["index", "stats", str(out_path)]) == 0
    stats_out = capsys.readouterr().out
    assert "doc_count" in stats_out and str(DOC_COUNT) in stats_out

    assert (
        cli_main(
            [
                "index",
                "query",
                str(out_path),
                "--expr",
                QUERIES[0],
                "--expr",
                QUERIES[1],
                "--io",
                "read",
                "--cache-mb",
                "1",
            ]
        )
        == 0
    )
    query_out = capsys.readouterr().out
    assert "physical:" in query_out
    assert QUERIES[0] in query_out


def test_cli_synthetic_build_matches_streamed_store(
    corpus_store, artifacts, tmp_path, capsys
):
    """``--synthetic N`` streams the same documents the store holds, so
    the two build paths produce charge-identical indexes."""
    _, index_path = artifacts
    out_path = tmp_path / "synthetic.idx"
    assert (
        cli_main(
            [
                "index",
                "build",
                "--synthetic",
                str(DOC_COUNT),
                "--seed",
                "11",
                "--out",
                str(out_path),
            ]
        )
        == 0
    )
    capsys.readouterr()
    with DiskInvertedIndex(index_path) as expected, DiskInvertedIndex(
        out_path
    ) as actual:
        assert actual.document_count == expected.document_count
        for field in expected.field_names:
            assert actual.vocabulary(field) == expected.vocabulary(field)
        memory = run_workload(BooleanTextServer(corpus_store, index=expected))
        synthetic = run_workload(BooleanTextServer(corpus_store, index=actual))
        assert synthetic == memory
