"""Smoke tests: every example script runs to completion.

Each example is executed in-process via its ``main()`` so failures give
real tracebacks; stdout is captured and spot-checked for the headline
content each example promises.
"""

import importlib.util
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, capsys):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart", capsys)
    assert "Optimizer picks:" in out
    assert "radhika" in out


def test_hospital_records(capsys):
    out = run_example("hospital_records", capsys)
    assert "ICU conditions in clinical trials" in out
    assert "-> executed" in out


def test_image_library(capsys):
    out = run_example("image_library", capsys)
    assert "Chosen:" in out
    assert "TS cross-check: identical results" in out


@pytest.mark.slow
def test_digital_library(capsys):
    out = run_example("digital_library", capsys)
    assert "Table 2" in out
    assert "winner match = yes" in out


@pytest.mark.slow
def test_multi_join_optimization(capsys):
    out = run_example("multi_join_optimization", capsys)
    assert "PrL showcase" in out
    assert "Probe(" in out


def test_remote_library(capsys):
    out = run_example("remote_library", capsys)
    assert "identical results" in out
    assert "refused with the circuit open" in out
    assert "closed -> open" in out
    assert "concurrent speedup" in out


def test_sql_interface(capsys):
    out = run_example("sql_interface", capsys)
    assert "Chosen: RTP" in out
    assert "Q4 (students co-authoring with their advisors)" in out
    assert "Executed:" in out


def test_disk_corpus(capsys):
    out = run_example("disk_corpus", capsys)
    assert "identical charges" in out
    assert "cache hit rate" in out
    assert "Done: one immutable file" in out
