"""Integration tests: the full Table-2 scenario, end to end.

These run every join method on the canonical queries, check the
cross-method equivalence on real (scenario-sized) data, verify the
Table-2 winners, and exercise the optimizer → executor path for Q5.
"""

import pytest

from repro.bench import table2_rows
from repro.core import (
    PlanEstimator,
    build_cost_inputs,
    choose_join_method,
    execute_plan,
    optimize_multijoin,
)
from repro.core.joinmethods import TupleSubstitution


@pytest.fixture(scope="module")
def table2(scenario):
    return table2_rows(scenario)


class TestMethodEquivalenceAtScale:
    def test_all_queries_all_methods_agree(self, table2):
        """run_methods raises internally if any method disagrees."""
        for query_id, runs in table2.items():
            assert len(runs) >= 3
            result_sizes = {run.results for run in runs}
            assert len(result_sizes) == 1

    def test_expected_result_sizes(self, scenario, table2):
        sizes = {qid: runs[0].results for qid, runs in table2.items()}
        assert sizes["q1"] == 4
        assert sizes["q2"] == 3
        assert sizes["q3"] == scenario.parameters["q3"]["planted_join_documents"]
        assert sizes["q4"] == scenario.parameters["q4"]["planted_join_documents"]


class TestTable2Winners:
    @pytest.mark.parametrize(
        "query_id, winner_prefix",
        [("q1", "RTP"), ("q2", "SJ"), ("q3", "P(name)+TS"), ("q4", "P(advisor)+RTP")],
    )
    def test_measured_winner(self, table2, query_id, winner_prefix):
        runs = sorted(table2[query_id], key=lambda run: run.measured_cost)
        assert runs[0].method == winner_prefix

    def test_ts_dominated_everywhere(self, table2):
        """TS is never the winner on any canonical query (the paper's
        headline: tuple substitution is prohibitively expensive)."""
        for query_id, runs in table2.items():
            winner = min(runs, key=lambda run: run.measured_cost)
            assert winner.method != "TS"


class TestOptimizerExecutesItsChoice:
    @pytest.mark.parametrize("query_id", ["q1", "q2", "q3", "q4"])
    def test_choice_executes_and_matches_ts(self, scenario, query_id):
        query = scenario.query(query_id)
        inputs = build_cost_inputs(query, scenario.context())
        choice = choose_join_method(query, inputs)
        chosen = choice.method.execute(query, scenario.context())
        reference = TupleSubstitution().execute(query, scenario.context())
        assert chosen.result_keys() == reference.result_keys()
        assert chosen.cost.total <= reference.cost.total * 1.05


class TestMultiJoinEndToEnd:
    def test_q5_spaces_agree_and_dominate(self, scenario):
        query = scenario.q5()
        results = {}
        costs = {}
        for space in ("traditional", "prl", "extended"):
            estimator = PlanEstimator(query, scenario.context())
            optimized = optimize_multijoin(query, estimator, space=space)
            execution = execute_plan(optimized.plan, query, scenario.context())
            results[space] = execution.result_keys()
            costs[space] = optimized.estimated_cost
        assert results["traditional"] == results["prl"] == results["extended"]
        assert costs["prl"] <= costs["traditional"] + 1e-9
        assert costs["extended"] <= costs["prl"] + 1e-9

    def test_q5_finds_cross_department_pairs(self, scenario):
        query = scenario.q5()
        estimator = PlanEstimator(query, scenario.context())
        optimized = optimize_multijoin(query, estimator)
        execution = execute_plan(optimized.plan, query, scenario.context())
        assert len(execution.rows) >= scenario.parameters["q5"]["planted_pairs"]
        for row in execution.rows:
            assert row["student.dept"] != row["faculty.dept"]


class TestLedgerConsistency:
    def test_measured_cost_matches_ledger_identity(self, scenario):
        """Invariant 5 at scale: ledger total equals the priced counters."""
        query = scenario.q3()
        context = scenario.context()
        execution = TupleSubstitution().execute(query, context)
        ledger = execution.cost
        constants = ledger.constants
        expected = (
            constants.invocation * ledger.searches
            + constants.per_posting * ledger.postings_processed
            + constants.short_form * ledger.short_documents
            + constants.long_form * ledger.long_documents
            + constants.rtp_per_document * ledger.rtp_documents
        )
        assert ledger.total == pytest.approx(expected)
