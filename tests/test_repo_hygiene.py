"""Repository hygiene: no build artefacts under version control.

PR 6 accidentally committed ``__pycache__`` bytecode; this test (and the
matching CI step) keeps that from regressing.  Bytecode is
interpreter-version-specific binary noise — it churns every diff and can
shadow real source changes on import.
"""

import shutil
import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def _tracked_files():
    proc = subprocess.run(
        ["git", "ls-files"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        check=True,
    )
    return proc.stdout.splitlines()


def _in_git_checkout() -> bool:
    if shutil.which("git") is None:
        return False
    probe = subprocess.run(
        ["git", "rev-parse", "--is-inside-work-tree"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    return probe.returncode == 0 and probe.stdout.strip() == "true"


@pytest.mark.skipif(
    not _in_git_checkout(), reason="not running from a git checkout"
)
def test_no_tracked_bytecode():
    offenders = [
        name
        for name in _tracked_files()
        if name.endswith((".pyc", ".pyo")) or "__pycache__" in name.split("/")
    ]
    assert offenders == [], (
        "compiled bytecode is tracked by git; "
        "run `git rm --cached` on: " + ", ".join(offenders)
    )


@pytest.mark.skipif(
    not _in_git_checkout(), reason="not running from a git checkout"
)
def test_gitignore_covers_bytecode():
    gitignore = (REPO_ROOT / ".gitignore").read_text().splitlines()
    assert "__pycache__/" in gitignore
    assert any(line in ("*.pyc", "*.py[cod]") for line in gitignore)
