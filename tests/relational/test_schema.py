"""Unit tests for Column and Schema (name resolution rules)."""

import pytest

from repro.errors import SchemaError
from repro.relational.schema import Column, Schema
from repro.relational.types import DataType


class TestColumn:
    def test_bare_column(self):
        column = Column("name", DataType.VARCHAR)
        assert column.qualifier is None
        assert column.bare_name == "name"

    def test_qualified_column(self):
        column = Column("student.name", DataType.VARCHAR)
        assert column.qualifier == "student"
        assert column.bare_name == "name"

    def test_qualify(self):
        column = Column("name", DataType.VARCHAR).qualified("student")
        assert column.name == "student.name"

    def test_requalify_replaces(self):
        column = Column("student.name", DataType.VARCHAR).qualified("s2")
        assert column.name == "s2.name"

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("", DataType.VARCHAR)

    def test_double_qualifier_rejected(self):
        with pytest.raises(SchemaError):
            Column("a.b.c", DataType.VARCHAR)


class TestSchema:
    def setup_method(self):
        self.schema = Schema.of(
            ("student.name", DataType.VARCHAR),
            ("student.year", DataType.INTEGER),
            ("faculty.name", DataType.VARCHAR),
        )

    def test_exact_lookup(self):
        assert self.schema.index_of("student.year") == 1

    def test_unique_bare_lookup(self):
        assert self.schema.index_of("year") == 1

    def test_ambiguous_bare_lookup_raises(self):
        with pytest.raises(SchemaError, match="ambiguous"):
            self.schema.index_of("name")

    def test_unknown_raises(self):
        with pytest.raises(SchemaError, match="unknown"):
            self.schema.index_of("missing")

    def test_has_column(self):
        assert self.schema.has_column("student.name")
        assert self.schema.has_column("year")
        assert not self.schema.has_column("name")  # ambiguous
        assert not self.schema.has_column("zzz")

    def test_duplicate_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema.of(("a", DataType.VARCHAR), ("a", DataType.INTEGER))

    def test_concat(self):
        other = Schema.of(("x", DataType.FLOAT))
        combined = self.schema.concat(other)
        assert len(combined) == 4
        assert combined.index_of("x") == 3

    def test_project_preserves_order(self):
        projected = self.schema.project(["faculty.name", "student.year"])
        assert projected.names() == ["faculty.name", "student.year"]

    def test_qualified(self):
        schema = Schema.of(("a", DataType.VARCHAR)).qualified("t")
        assert schema.names() == ["t.a"]

    def test_equality_and_hash(self):
        same = Schema.of(
            ("student.name", DataType.VARCHAR),
            ("student.year", DataType.INTEGER),
            ("faculty.name", DataType.VARCHAR),
        )
        assert same == self.schema
        assert hash(same) == hash(self.schema)

    def test_iteration(self):
        assert [c.bare_name for c in self.schema] == ["name", "year", "name"]
