"""Unit + property tests for the expression language (3-valued logic)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ExpressionError, TypeMismatchError
from repro.relational.expressions import (
    And,
    ColumnRef,
    Comparison,
    Contains,
    InList,
    Like,
    Literal,
    Not,
    Or,
    conjoin,
    conjuncts,
)
from repro.relational.row import Row
from repro.relational.schema import Schema
from repro.relational.types import DataType

SCHEMA = Schema.of(
    ("s.name", DataType.VARCHAR),
    ("s.year", DataType.INTEGER),
    ("s.note", DataType.VARCHAR),
)


def row(name="kao", year=3, note="belief update matters"):
    return Row(SCHEMA, [name, year, note])


class TestComparison:
    def test_operators(self):
        r = row(year=3)
        assert Comparison("=", ColumnRef("s.year"), Literal(3)).evaluate(r) is True
        assert Comparison("!=", ColumnRef("s.year"), Literal(3)).evaluate(r) is False
        assert Comparison("<", ColumnRef("s.year"), Literal(4)).evaluate(r) is True
        assert Comparison("<=", ColumnRef("s.year"), Literal(3)).evaluate(r) is True
        assert Comparison(">", ColumnRef("s.year"), Literal(3)).evaluate(r) is False
        assert Comparison(">=", ColumnRef("s.year"), Literal(4)).evaluate(r) is False

    def test_null_is_unknown(self):
        r = row(year=None)
        assert Comparison("=", ColumnRef("s.year"), Literal(3)).evaluate(r) is None
        assert Comparison("!=", ColumnRef("s.year"), Literal(3)).evaluate(r) is None

    def test_unknown_operator_rejected(self):
        with pytest.raises(ExpressionError):
            Comparison("~", Literal(1), Literal(2))

    def test_type_mismatch_raises(self):
        with pytest.raises(TypeMismatchError):
            Comparison("<", ColumnRef("s.name"), Literal(3)).evaluate(row())


class TestBooleanLogic:
    def test_and_short_circuit_false_beats_unknown(self):
        unknown = Comparison("=", ColumnRef("s.year"), Literal(1))
        false = Comparison("=", Literal(1), Literal(2))
        assert And((unknown, false)).evaluate(row(year=None)) is False

    def test_and_unknown_when_no_false(self):
        unknown = Comparison("=", ColumnRef("s.year"), Literal(1))
        true = Comparison("=", Literal(1), Literal(1))
        assert And((unknown, true)).evaluate(row(year=None)) is None

    def test_or_true_beats_unknown(self):
        unknown = Comparison("=", ColumnRef("s.year"), Literal(1))
        true = Comparison("=", Literal(1), Literal(1))
        assert Or((unknown, true)).evaluate(row(year=None)) is True

    def test_or_unknown_when_no_true(self):
        unknown = Comparison("=", ColumnRef("s.year"), Literal(1))
        false = Comparison("=", Literal(1), Literal(2))
        assert Or((unknown, false)).evaluate(row(year=None)) is None

    def test_not_of_unknown_is_unknown(self):
        unknown = Comparison("=", ColumnRef("s.year"), Literal(1))
        assert Not(unknown).evaluate(row(year=None)) is None

    def test_operator_overloads(self):
        a = Comparison("=", Literal(1), Literal(1))
        b = Comparison("=", Literal(2), Literal(2))
        assert (a & b).evaluate(row()) is True
        assert (a | b).evaluate(row()) is True
        assert (~a).evaluate(row()) is False

    def test_empty_connectives_rejected(self):
        with pytest.raises(ExpressionError):
            And(())
        with pytest.raises(ExpressionError):
            Or(())


class TestLike:
    def test_percent_wildcard(self):
        assert Like(ColumnRef("s.note"), "belief%").evaluate(row()) is True
        assert Like(ColumnRef("s.note"), "%update%").evaluate(row()) is True
        assert Like(ColumnRef("s.note"), "update%").evaluate(row()) is False

    def test_underscore_wildcard(self):
        assert Like(ColumnRef("s.name"), "k_o").evaluate(row()) is True

    def test_regex_metacharacters_escaped(self):
        r = row(note="a.c")
        assert Like(ColumnRef("s.note"), "a.c").evaluate(r) is True
        assert Like(ColumnRef("s.note"), "abc").evaluate(r) is False

    def test_null_unknown(self):
        assert Like(ColumnRef("s.note"), "%").evaluate(row(note=None)) is None


class TestContains:
    def test_word_boundary(self):
        r = row(note="the belief update operator")
        assert Contains(ColumnRef("s.note"), Literal("belief update")).evaluate(r) is True
        assert Contains(ColumnRef("s.note"), Literal("lief upd")).evaluate(r) is False

    def test_substring_mode(self):
        r = row(note="the belief update operator")
        expr = Contains(ColumnRef("s.note"), Literal("lief upd"), word_boundary=False)
        assert expr.evaluate(r) is True

    def test_case_insensitive(self):
        r = row(note="Belief Update")
        assert Contains(ColumnRef("s.note"), Literal("belief")).evaluate(r) is True


class TestInList:
    def test_membership(self):
        assert InList(ColumnRef("s.name"), ("kao", "pham")).evaluate(row()) is True
        assert InList(ColumnRef("s.name"), ("pham",)).evaluate(row()) is False

    def test_null_unknown(self):
        assert InList(ColumnRef("s.name"), ("kao",)).evaluate(row(name=None)) is None


class TestConjuncts:
    def test_flattening(self):
        a = Comparison("=", Literal(1), Literal(1))
        b = Comparison("=", Literal(2), Literal(2))
        c = Comparison("=", Literal(3), Literal(3))
        nested = And((a, And((b, c))))
        assert conjuncts(nested) == [a, b, c]

    def test_conjoin_roundtrip(self):
        a = Comparison("=", Literal(1), Literal(1))
        b = Comparison("=", Literal(2), Literal(2))
        assert conjoin([]) is None
        assert conjoin([a]) is a
        assert conjuncts(conjoin([a, b])) == [a, b]

    def test_referenced_columns(self):
        expr = And(
            (
                Comparison("=", ColumnRef("s.name"), Literal("x")),
                Comparison(">", ColumnRef("s.year"), Literal(1)),
            )
        )
        assert expr.referenced_columns() == {"s.name", "s.year"}


@given(
    year=st.one_of(st.none(), st.integers(-5, 5)),
    bound=st.integers(-5, 5),
)
def test_comparison_never_true_and_false_complement(year, bound):
    """For non-NULL values, = and != are complementary; NULL gives unknown."""
    r = row(year=year)
    eq = Comparison("=", ColumnRef("s.year"), Literal(bound)).evaluate(r)
    ne = Comparison("!=", ColumnRef("s.year"), Literal(bound)).evaluate(r)
    if year is None:
        assert eq is None and ne is None
    else:
        assert eq == (not ne)


@given(values=st.lists(st.booleans(), min_size=1, max_size=6))
def test_and_or_match_python_semantics_on_booleans(values):
    operands = tuple(Comparison("=", Literal(v), Literal(True)) for v in values)
    r = row()
    assert And(operands).evaluate(r) == all(values)
    assert Or(operands).evaluate(r) == any(values)
