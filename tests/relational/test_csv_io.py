"""Unit tests for CSV import/export round-trips."""

import pytest

from repro.errors import SchemaError
from repro.relational.csv_io import load_table_csv, save_table_csv
from repro.relational.schema import Schema
from repro.relational.table import Table
from repro.relational.types import DataType

SCHEMA = Schema.of(
    ("name", DataType.VARCHAR),
    ("year", DataType.INTEGER),
    ("gpa", DataType.FLOAT),
    ("active", DataType.BOOLEAN),
)


@pytest.fixture
def table():
    table = Table("s", SCHEMA)
    table.insert(["kao", 3, 3.5, True])
    table.insert(["smith", None, None, False])
    table.insert(["o'brien, jr.", 1, 2.0, None])
    return table


def test_round_trip(table, tmp_path):
    path = tmp_path / "s.csv"
    save_table_csv(table, path)
    loaded = load_table_csv("s2", SCHEMA, path)
    assert [r.values for r in loaded.rows()] == [r.values for r in table.rows()]


def test_nulls_round_trip_as_empty(table, tmp_path):
    path = tmp_path / "s.csv"
    save_table_csv(table, path)
    loaded = load_table_csv("s2", SCHEMA, path)
    assert loaded.rows()[1]["s2.year"] is None
    assert loaded.rows()[2]["s2.active"] is None


def test_header_mismatch_rejected(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("wrong,header\n1,2\n")
    with pytest.raises(SchemaError, match="header"):
        load_table_csv("x", SCHEMA, path)


def test_field_count_mismatch_rejected(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("name,year,gpa,active\nonly-one-field\n")
    with pytest.raises(SchemaError, match="expected 4 fields"):
        load_table_csv("x", SCHEMA, path)


def test_empty_file_rejected(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("")
    with pytest.raises(SchemaError, match="empty"):
        load_table_csv("x", SCHEMA, path)


def test_reordered_columns_accepted(tmp_path):
    path = tmp_path / "reordered.csv"
    path.write_text("year,name,active,gpa\n3,kao,true,3.5\n")
    loaded = load_table_csv("x", SCHEMA, path)
    assert loaded.rows()[0].values == ("kao", 3, 3.5, True)


def test_bad_boolean_rejected(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("name,year,gpa,active\nkao,3,3.5,maybe\n")
    with pytest.raises(SchemaError, match="boolean"):
        load_table_csv("x", SCHEMA, path)
