"""Unit tests for relational value types and coercion."""

import pytest

from repro.errors import TypeMismatchError
from repro.relational.types import DataType, coerce_value, infer_type, python_type_of


class TestInferType:
    def test_string(self):
        assert infer_type("hello") is DataType.VARCHAR

    def test_integer(self):
        assert infer_type(42) is DataType.INTEGER

    def test_float(self):
        assert infer_type(4.2) is DataType.FLOAT

    def test_bool_not_integer(self):
        """bool is a subclass of int in Python; must map to BOOLEAN."""
        assert infer_type(True) is DataType.BOOLEAN

    def test_unsupported_raises(self):
        with pytest.raises(TypeMismatchError):
            infer_type([1, 2])


class TestCoerceValue:
    def test_null_passes_through(self):
        for data_type in DataType:
            assert coerce_value(None, data_type) is None

    def test_varchar(self):
        assert coerce_value("x", DataType.VARCHAR) == "x"

    def test_integer(self):
        assert coerce_value(7, DataType.INTEGER) == 7

    def test_int_widens_to_float(self):
        value = coerce_value(7, DataType.FLOAT)
        assert value == 7.0 and isinstance(value, float)

    def test_bool_rejected_for_integer(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(True, DataType.INTEGER)

    def test_bool_rejected_for_float(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(False, DataType.FLOAT)

    def test_string_rejected_for_integer(self):
        with pytest.raises(TypeMismatchError):
            coerce_value("7", DataType.INTEGER)

    def test_number_rejected_for_varchar(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(7, DataType.VARCHAR)

    def test_boolean_accepts_bool(self):
        assert coerce_value(True, DataType.BOOLEAN) is True


def test_python_type_mapping():
    assert python_type_of(DataType.VARCHAR) is str
    assert python_type_of(DataType.INTEGER) is int
    assert python_type_of(DataType.FLOAT) is float
    assert python_type_of(DataType.BOOLEAN) is bool
