"""Unit tests for Row."""

import pytest

from repro.errors import SchemaError
from repro.relational.row import Row
from repro.relational.schema import Schema
from repro.relational.types import DataType


@pytest.fixture
def schema():
    return Schema.of(
        ("s.name", DataType.VARCHAR),
        ("s.year", DataType.INTEGER),
    )


def test_length_mismatch_rejected(schema):
    with pytest.raises(SchemaError):
        Row(schema, ["only-one"])


def test_lookup_by_qualified_and_bare(schema):
    row = Row(schema, ["kao", 3])
    assert row["s.name"] == "kao"
    assert row["year"] == 3


def test_get_with_default(schema):
    row = Row(schema, ["kao", 3])
    assert row.get("missing", "fallback") == "fallback"
    assert row.get("year") == 3


def test_to_dict(schema):
    row = Row(schema, ["kao", 3])
    assert row.to_dict() == {"s.name": "kao", "s.year": 3}


def test_project(schema):
    row = Row(schema, ["kao", 3])
    projected = row.project(["s.year"])
    assert projected.values == (3,)
    assert projected.schema.names() == ["s.year"]


def test_concat(schema):
    other_schema = Schema.of(("f.dept", DataType.VARCHAR))
    left = Row(schema, ["kao", 3])
    right = Row(other_schema, ["cs"])
    joined = left.concat(right)
    assert joined.values == ("kao", 3, "cs")
    assert joined["f.dept"] == "cs"


def test_equality_requires_schema_and_values(schema):
    a = Row(schema, ["kao", 3])
    b = Row(schema, ["kao", 3])
    c = Row(schema, ["kao", 4])
    assert a == b
    assert a != c
    assert hash(a) == hash(b)


def test_iteration_and_len(schema):
    row = Row(schema, ["kao", 3])
    assert list(row) == ["kao", 3]
    assert len(row) == 2
