"""Unit tests for GroupBy and the aggregate folds."""

import pytest

from repro.errors import PlanError
from repro.relational.aggregates import (
    GroupBy,
    avg_of,
    count,
    count_rows,
    max_of,
    min_of,
    sum_of,
)
from repro.relational.operators import TableScan
from repro.relational.schema import Schema
from repro.relational.table import Table
from repro.relational.types import DataType


@pytest.fixture
def sales():
    table = Table(
        "s",
        Schema.of(
            ("region", DataType.VARCHAR),
            ("amount", DataType.INTEGER),
        ),
    )
    table.insert_many(
        [
            ["east", 10],
            ["east", 20],
            ["west", 5],
            ["west", None],
            ["north", None],
        ]
    )
    return table


def rows_by_key(operator, key):
    return {row[key]: row for row in operator}


class TestGrouping:
    def test_group_counts(self, sales):
        out = rows_by_key(
            GroupBy(TableScan(sales), ["s.region"], [count_rows()]), "s.region"
        )
        assert out["east"]["count"] == 2
        assert out["west"]["count"] == 2
        assert out["north"]["count"] == 1

    def test_count_column_skips_nulls(self, sales):
        out = rows_by_key(
            GroupBy(TableScan(sales), ["s.region"], [count("s.amount")]),
            "s.region",
        )
        assert out["east"]["count_amount"] == 2
        assert out["west"]["count_amount"] == 1
        assert out["north"]["count_amount"] == 0

    def test_sum_min_max_avg(self, sales):
        out = rows_by_key(
            GroupBy(
                TableScan(sales),
                ["s.region"],
                [sum_of("s.amount"), min_of("s.amount"),
                 max_of("s.amount"), avg_of("s.amount")],
            ),
            "s.region",
        )
        east = out["east"]
        assert east["sum_amount"] == 30.0
        assert east["min_amount"] == 10
        assert east["max_amount"] == 20
        assert east["avg_amount"] == 15.0

    def test_all_null_group_yields_null(self, sales):
        out = rows_by_key(
            GroupBy(TableScan(sales), ["s.region"], [sum_of("s.amount")]),
            "s.region",
        )
        assert out["north"]["sum_amount"] is None

    def test_keys_only_is_distinct(self, sales):
        regions = {row["s.region"] for row in GroupBy(TableScan(sales), ["s.region"])}
        assert regions == {"east", "west", "north"}

    def test_first_seen_order(self, sales):
        regions = [row["s.region"] for row in GroupBy(TableScan(sales), ["s.region"])]
        assert regions == ["east", "west", "north"]


class TestGlobalAggregate:
    def test_whole_input_one_group(self, sales):
        rows = list(GroupBy(TableScan(sales), [], [count_rows(), sum_of("s.amount")]))
        assert len(rows) == 1
        assert rows[0]["count"] == 5
        assert rows[0]["sum_amount"] == 35.0

    def test_empty_input_still_one_group(self, sales):
        sales.clear()
        rows = list(GroupBy(TableScan(sales), [], [count_rows(), sum_of("s.amount")]))
        assert rows[0]["count"] == 0
        assert rows[0]["sum_amount"] is None


class TestValidation:
    def test_needs_keys_or_aggregates(self, sales):
        with pytest.raises(PlanError):
            GroupBy(TableScan(sales), [], [])

    def test_duplicate_outputs_rejected(self, sales):
        with pytest.raises(PlanError):
            GroupBy(
                TableScan(sales),
                ["s.region"],
                [count_rows("x"), count("s.amount", "x")],
            )

    def test_output_schema(self, sales):
        operator = GroupBy(TableScan(sales), ["s.region"], [count_rows()])
        assert operator.output_schema.names() == ["s.region", "count"]
