"""Unit + property tests for the physical operators."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import PlanError
from repro.relational.expressions import ColumnRef, Comparison, Literal
from repro.relational.operators import (
    CrossProduct,
    Distinct,
    Filter,
    HashJoin,
    Limit,
    NestedLoopJoin,
    Project,
    Sort,
    TableScan,
    materialize,
)
from repro.relational.schema import Schema
from repro.relational.table import Table
from repro.relational.types import DataType


@pytest.fixture
def people():
    table = Table(
        "p", Schema.of(("name", DataType.VARCHAR), ("dept", DataType.VARCHAR))
    )
    table.insert_many(
        [
            ["ann", "cs"],
            ["bob", "ee"],
            ["cat", "cs"],
            ["dan", None],
            ["ann", "cs"],
        ]
    )
    return table


@pytest.fixture
def depts():
    table = Table(
        "d", Schema.of(("dept", DataType.VARCHAR), ("floor", DataType.INTEGER))
    )
    table.insert_many([["cs", 1], ["ee", 2], ["me", 3]])
    return table


def names(rows, column="p.name"):
    return [row[column] for row in rows]


class TestScanFilterProject:
    def test_scan(self, people):
        assert len(list(TableScan(people))) == 5

    def test_filter_keeps_only_true(self, people):
        predicate = Comparison("=", ColumnRef("p.dept"), Literal("cs"))
        out = list(Filter(TableScan(people), predicate))
        # NULL dept evaluates to unknown -> filtered out.
        assert names(out) == ["ann", "cat", "ann"]

    def test_project(self, people):
        out = list(Project(TableScan(people), ["p.dept"]))
        assert out[0].schema.names() == ["p.dept"]
        assert [r["p.dept"] for r in out[:2]] == ["cs", "ee"]


class TestDistinctSortLimit:
    def test_distinct(self, people):
        out = list(Distinct(TableScan(people)))
        assert len(out) == 4  # duplicate (ann, cs) removed

    def test_sort_ascending_nulls_first(self, people):
        out = list(Sort(TableScan(people), ["p.dept"]))
        assert [r["p.dept"] for r in out] == [None, "cs", "cs", "cs", "ee"]

    def test_sort_descending(self, people):
        out = list(Sort(TableScan(people), ["p.name"], descending=True))
        assert names(out)[0] == "dan"

    def test_limit(self, people):
        assert len(list(Limit(TableScan(people), 2))) == 2
        with pytest.raises(PlanError):
            Limit(TableScan(people), -1)


class TestJoins:
    def test_nested_loop_equi(self, people, depts):
        predicate = Comparison("=", ColumnRef("p.dept"), ColumnRef("d.dept"))
        join = NestedLoopJoin(TableScan(people), TableScan(depts), predicate)
        out = list(join)
        assert len(out) == 4  # dan (NULL) matches nothing
        assert join.comparisons == 5 * 3

    def test_hash_join_matches_nested_loop(self, people, depts):
        predicate = Comparison("=", ColumnRef("p.dept"), ColumnRef("d.dept"))
        nl = set(
            r.values
            for r in NestedLoopJoin(TableScan(people), TableScan(depts), predicate)
        )
        hj = set(
            r.values
            for r in HashJoin(
                TableScan(people), TableScan(depts), [("p.dept", "d.dept")]
            )
        )
        assert nl == hj

    def test_hash_join_residual(self, people, depts):
        residual = Comparison("=", ColumnRef("p.name"), Literal("ann"))
        out = list(
            HashJoin(
                TableScan(people),
                TableScan(depts),
                [("p.dept", "d.dept")],
                residual=residual,
            )
        )
        assert names(out) == ["ann", "ann"]

    def test_hash_join_needs_keys(self, people, depts):
        with pytest.raises(PlanError):
            HashJoin(TableScan(people), TableScan(depts), [])

    def test_cross_product(self, people, depts):
        out = list(CrossProduct(TableScan(people), TableScan(depts)))
        assert len(out) == 15

    def test_join_schema_concat(self, people, depts):
        join = NestedLoopJoin(TableScan(people), TableScan(depts))
        assert join.output_schema.names() == [
            "p.name",
            "p.dept",
            "d.dept",
            "d.floor",
        ]


class TestMaterialize:
    def test_materialize_round_trip(self, people):
        mat = materialize(TableScan(people))
        assert len(mat) == 5
        assert list(mat)[0]["p.name"] == "ann"

    def test_materialized_input_reiterable(self, people):
        mat = materialize(TableScan(people))
        assert len(list(mat)) == len(list(mat))


@given(
    left=st.lists(st.integers(0, 5), max_size=12),
    right=st.lists(st.integers(0, 5), max_size=12),
)
def test_hash_join_equals_nested_loop_property(left, right):
    """HashJoin and NestedLoopJoin agree on random integer tables."""
    lt = Table("l", Schema.of(("k", DataType.INTEGER)))
    rt = Table("r", Schema.of(("k", DataType.INTEGER)))
    for v in left:
        lt.insert([v])
    for v in right:
        rt.insert([v])
    predicate = Comparison("=", ColumnRef("l.k"), ColumnRef("r.k"))
    nl = sorted(
        r.values for r in NestedLoopJoin(TableScan(lt), TableScan(rt), predicate)
    )
    hj = sorted(
        r.values for r in HashJoin(TableScan(lt), TableScan(rt), [("l.k", "r.k")])
    )
    assert nl == hj
