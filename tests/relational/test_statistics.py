"""Unit tests for relational statistics collection and estimation."""

import pytest

from repro.errors import StatisticsError
from repro.relational.expressions import And, ColumnRef, Comparison, Like, Literal
from repro.relational.schema import Schema
from repro.relational.statistics import collect_table_statistics
from repro.relational.table import Table
from repro.relational.types import DataType


@pytest.fixture
def stats():
    table = Table(
        "t",
        Schema.of(("area", DataType.VARCHAR), ("year", DataType.INTEGER)),
    )
    for area, year in [
        ("ai", 1), ("ai", 2), ("ai", 3), ("db", 4), ("db", None), ("th", 5),
    ]:
        table.insert([area, year])
    return collect_table_statistics(table)


def test_row_count(stats):
    assert stats.row_count == 6


def test_distinct_and_null_counts(stats):
    assert stats.distinct_count("area") == 3
    assert stats.column("year").null_count == 1
    assert stats.distinct_count("year") == 5


def test_most_common(stats):
    assert stats.column("area").most_common[0] == ("ai", 3)
    assert stats.column("area").top_frequency == 3


def test_qualified_name_accepted(stats):
    assert stats.distinct_count("t.area") == 3


def test_unknown_column_raises(stats):
    with pytest.raises(StatisticsError):
        stats.column("nope")


def test_equality_selectivity(stats):
    assert stats.selectivity_of_equality("area") == pytest.approx(1 / 3)


class TestRowEstimates:
    def test_no_predicate(self, stats):
        assert stats.estimated_rows_after(None) == 6

    def test_equality(self, stats):
        predicate = Comparison("=", ColumnRef("area"), Literal("ai"))
        assert stats.estimated_rows_after(predicate) == pytest.approx(2.0)

    def test_range_uses_one_third(self, stats):
        predicate = Comparison(">", ColumnRef("year"), Literal(2))
        assert stats.estimated_rows_after(predicate) == pytest.approx(2.0)

    def test_inequality(self, stats):
        predicate = Comparison("!=", ColumnRef("area"), Literal("ai"))
        assert stats.estimated_rows_after(predicate) == pytest.approx(4.0)

    def test_conjunction_multiplies(self, stats):
        predicate = And(
            (
                Comparison("=", ColumnRef("area"), Literal("ai")),
                Comparison(">", ColumnRef("year"), Literal(2)),
            )
        )
        assert stats.estimated_rows_after(predicate) == pytest.approx(6 / 3 / 3)

    def test_like_default(self, stats):
        predicate = Like(ColumnRef("area"), "a%")
        assert stats.estimated_rows_after(predicate) == pytest.approx(0.6)
