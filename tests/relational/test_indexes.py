"""Unit tests for secondary indexes."""

import pytest

from repro.relational.indexes import HashIndex, SortedIndex
from repro.relational.schema import Schema
from repro.relational.table import Table
from repro.relational.types import DataType


@pytest.fixture
def table():
    table = Table(
        "t", Schema.of(("k", DataType.INTEGER), ("v", DataType.VARCHAR))
    )
    table.insert_many(
        [[3, "c"], [1, "a"], [2, "b"], [3, "c2"], [None, "null-key"]]
    )
    return table


class TestHashIndex:
    def test_lookup(self, table):
        index = HashIndex(table, "k")
        assert [r["t.v"] for r in index.lookup(3)] == ["c", "c2"]
        assert index.lookup(99) == []

    def test_null_never_matches(self, table):
        index = HashIndex(table, "k")
        assert index.lookup(None) == []

    def test_nulls_excluded_from_index(self, table):
        index = HashIndex(table, "k")
        assert len(index) == 4
        assert sorted(index.distinct_keys()) == [1, 2, 3]

    def test_qualified_column_name(self, table):
        index = HashIndex(table, "t.k")
        assert len(index.lookup(1)) == 1


class TestSortedIndex:
    def test_equality(self, table):
        index = SortedIndex(table, "k")
        assert [r["t.v"] for r in index.lookup(3)] == ["c", "c2"]

    def test_range_inclusive(self, table):
        index = SortedIndex(table, "k")
        assert [r["t.k"] for r in index.range(1, 2)] == [1, 2]

    def test_range_exclusive(self, table):
        index = SortedIndex(table, "k")
        out = [r["t.k"] for r in index.range(1, 3, include_low=False, include_high=False)]
        assert out == [2]

    def test_open_ranges(self, table):
        index = SortedIndex(table, "k")
        assert [r["t.k"] for r in index.range(low=2)] == [2, 3, 3]
        assert [r["t.k"] for r in index.range(high=1)] == [1]
        assert len(list(index.range())) == 4

    def test_null_lookup_empty(self, table):
        index = SortedIndex(table, "k")
        assert index.lookup(None) == []
