"""Unit tests for Table and Catalog."""

import pytest

from repro.errors import CatalogError, SchemaError, TypeMismatchError
from repro.relational.catalog import Catalog
from repro.relational.schema import Schema
from repro.relational.table import Table
from repro.relational.types import DataType


@pytest.fixture
def table():
    table = Table(
        "student",
        Schema.of(("name", DataType.VARCHAR), ("year", DataType.INTEGER)),
    )
    table.insert(["kao", 3])
    table.insert(["smith", None])
    table.insert(["kao", 5])
    return table


class TestTable:
    def test_scan_yields_qualified_rows(self, table):
        rows = table.rows()
        assert len(rows) == 3
        assert rows[0]["student.name"] == "kao"
        assert rows[0].schema.names() == ["student.name", "student.year"]

    def test_insert_type_checked(self, table):
        with pytest.raises(TypeMismatchError):
            table.insert(["x", "not-an-int"])

    def test_insert_arity_checked(self, table):
        with pytest.raises(SchemaError):
            table.insert(["too-few"])

    def test_insert_dict(self, table):
        table.insert_dict({"name": "pham"})
        assert table.rows()[-1]["student.year"] is None

    def test_insert_dict_unknown_key(self, table):
        with pytest.raises(SchemaError):
            table.insert_dict({"nope": 1})

    def test_null_round_trip(self, table):
        assert table.rows()[1]["student.year"] is None

    def test_column_values(self, table):
        assert table.column_values("name") == ["kao", "smith", "kao"]
        assert table.column_values("student.name") == ["kao", "smith", "kao"]

    def test_distinct_values_skip_nulls(self, table):
        assert table.distinct_values("year") == [3, 5]
        assert table.distinct_count("name") == 2

    def test_clear(self, table):
        table.clear()
        assert len(table) == 0

    def test_qualified_schema_rejects_foreign_qualifier(self):
        with pytest.raises(SchemaError):
            Table("a", Schema.of(("b.x", DataType.VARCHAR)))

    def test_accepts_own_qualifier(self):
        table = Table("a", Schema.of(("a.x", DataType.VARCHAR)))
        assert table.schema.names() == ["a.x"]


class TestCatalog:
    def test_create_and_lookup(self):
        catalog = Catalog()
        table = catalog.create_table("t", Schema.of(("x", DataType.INTEGER)))
        assert catalog.table("t") is table
        assert "t" in catalog

    def test_duplicate_rejected(self):
        catalog = Catalog()
        catalog.create_table("t", Schema.of(("x", DataType.INTEGER)))
        with pytest.raises(CatalogError):
            catalog.create_table("t", Schema.of(("y", DataType.INTEGER)))

    def test_missing_lookup_raises(self):
        with pytest.raises(CatalogError):
            Catalog().table("nope")

    def test_drop(self):
        catalog = Catalog()
        catalog.create_table("t", Schema.of(("x", DataType.INTEGER)))
        catalog.drop_table("t")
        assert "t" not in catalog
        with pytest.raises(CatalogError):
            catalog.drop_table("t")

    def test_register_existing(self):
        catalog = Catalog()
        table = Table("t", Schema.of(("x", DataType.INTEGER)))
        catalog.register(table)
        assert catalog.table_names() == ["t"]
