"""Tests for the exception hierarchy contract."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.SchemaError,
    errors.CatalogError,
    errors.ExpressionError,
    errors.TypeMismatchError,
    errors.TextSystemError,
    errors.SearchSyntaxError,
    errors.SearchLimitExceeded,
    errors.UnknownFieldError,
    errors.UnknownDocumentError,
    errors.GatewayError,
    errors.StatisticsError,
    errors.PlanError,
    errors.OptimizationError,
    errors.JoinMethodError,
    errors.WorkloadError,
]


def test_every_error_derives_from_repro_error():
    for error_type in ALL_ERRORS:
        assert issubclass(error_type, errors.ReproError)


def test_text_system_subhierarchy():
    for error_type in (
        errors.SearchSyntaxError,
        errors.SearchLimitExceeded,
        errors.UnknownFieldError,
        errors.UnknownDocumentError,
    ):
        assert issubclass(error_type, errors.TextSystemError)


def test_type_mismatch_is_expression_error():
    assert issubclass(errors.TypeMismatchError, errors.ExpressionError)


def test_catching_library_errors_does_not_catch_programming_errors():
    with pytest.raises(TypeError):
        try:
            raise TypeError("not a library error")
        except errors.ReproError:  # pragma: no cover - must not trigger
            pytest.fail("ReproError must not swallow TypeError")


def test_all_exports_match_module():
    for name in errors.__all__:
        assert hasattr(errors, name)
