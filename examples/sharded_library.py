"""The digital library scaled out across text-server shards.

The paper treats the text system as one opaque ``search``/``retrieve``
endpoint; this example splits that endpoint into shards and shows the
three properties that make the scale-out safe:

1. transparency — a join executed against the sharded deployment
   returns the same pairs at the *bit-identical* priced cost, because
   docids partition (merge restores single-server ordering) and
   postings partition (per-shard counts sum exactly);
2. wall clock — routed retrievals split their frame streams across
   shards, so a retrieve-heavy workload speeds up with shard count
   while the cost model sees no difference;
3. failover — each shard can carry replicas; dead primaries are
   detected by the resilience layer and the replica serves, with every
   failover visible as a traced event.

Run:  python examples/sharded_library.py
"""

import time

from repro.core.joinmethods import TupleSubstitution
from repro.remote import (
    RemoteTextTransport,
    RetryPolicy,
    ShardBackend,
    ShardedTextTransport,
    build_sharded_transport,
)
from repro.remote.channel import FaultProfile
from repro.textsys.server import BooleanTextServer
from repro.textsys.sharding import partition_store
from repro.workload import build_default_scenario


def run_q1(scenario):
    context = scenario.context()
    execution = TupleSubstitution().execute(scenario.q1(long_form=False), context)
    return execution.result_keys(), context.client.ledger


def main() -> None:
    print("Digital library over a sharded text service")
    print("===========================================")
    scenario = build_default_scenario(seed=7, document_count=1500)
    local_server = scenario.server
    print(f"  text server: {local_server}")
    print()

    # ------------------------------------------------------------------
    print("[1] transparency: same join, same priced total, any shard count")
    local_keys, local_ledger = run_q1(scenario)
    for shards in (2, 4):
        transport = build_sharded_transport(
            local_server, shards, profile="lan", seed=7, time_scale=0.0
        )
        scenario.server = transport
        sharded_keys, sharded_ledger = run_q1(scenario)
        scenario.server = local_server
        status = (
            "identical pairs, bit-identical total"
            if sharded_keys == local_keys
            and sharded_ledger.total == local_ledger.total
            else "MISMATCH"
        )
        print(f"  {shards} shards: {len(sharded_keys)} pairs, {status}")
        transport.close()
    print()

    # ------------------------------------------------------------------
    print("[2] wall clock: routed retrievals divide the latency waves")
    docids = [document.docid for document in local_server.store][:120]
    timings = {}
    for shards in (1, 4):
        transport = build_sharded_transport(
            local_server, shards, profile="wan", seed=7,
            time_scale=1.0, pool_size=4,
        )
        started = time.perf_counter()
        documents = transport.retrieve_many(docids)
        timings[shards] = time.perf_counter() - started
        assert [d.docid for d in documents] == docids
        transport.close()
        print(f"  {shards} shard(s): {timings[shards]:.3f}s wall")
    print(f"  speedup: {timings[1] / timings[4]:.1f}x")
    print()

    # ------------------------------------------------------------------
    print("[3] failover: dead primaries, replicas serve")
    corpus = partition_store(local_server.store, 2)
    dead = FaultProfile("dead", error_rate=1.0)
    backends = []
    for shard_id, store in enumerate(corpus.stores):
        primary = RemoteTextTransport(
            BooleanTextServer(store), profile=dead, time_scale=0.0,
            retry=RetryPolicy(max_attempts=2, base_delay=0.001),
        )
        replica = RemoteTextTransport(
            BooleanTextServer(store), profile="lan", time_scale=0.0
        )
        backends.append(ShardBackend(shard_id, primary, [replica]))
    transport = ShardedTextTransport(corpus, backends)
    result = transport.search("TI='system'")
    expected = local_server.search("TI='system'")
    status = "identical" if result.docids == expected.docids else "MISMATCH"
    print(f"  search over dead primaries: {len(result)} matches, {status}")
    _, events = transport.drain_accounting()
    failover_events = [event for event in events if event.kind == "failover"]
    print(f"  failovers recorded: {transport.failovers} "
          f"({len(failover_events)} traced events)")
    transport.close()


if __name__ == "__main__":
    main()
