"""The digital library reached over an unreliable network.

The paper's OpenODB ↔ Mercury integration talked to a *remote* text
server; this example puts the reproduction in the same situation with
the fault-injecting transport:

1. a flaky link — frames error and vanish, retries absorb every fault,
   and the join answers stay identical to the in-process run while the
   wasted seconds land in the ledger's ``seconds_retried`` channel;
2. a degraded link — failures trip the circuit breaker, calls are
   refused locally while it is open, and a half-open probe closes it
   once the source recovers;
3. a wan link — concurrent batch dispatch over a connection pool
   overlaps frame latency for a multi-x wall-clock speedup.

Run:  python examples/remote_library.py
"""

import time

from repro.core.joinmethods import TupleSubstitution
from repro.errors import CircuitOpenError, TransportError
from repro.remote import CircuitBreaker, RemoteTextTransport, RetryPolicy
from repro.textsys.query import TermQuery
from repro.workload import build_default_scenario


def run_q1(scenario):
    context = scenario.context()
    execution = TupleSubstitution().execute(scenario.q1(long_form=False), context)
    return execution.result_keys(), context.client.ledger


def main() -> None:
    print("Digital library over a remote text source")
    print("=========================================")
    scenario = build_default_scenario(seed=7, document_count=1500)
    local_server = scenario.server
    print(f"  text server: {local_server}")
    print()

    # ------------------------------------------------------------------
    print("[1] flaky link: retries keep the join answers identical")
    local_keys, local_ledger = run_q1(scenario)

    flaky = RemoteTextTransport(
        local_server,
        profile="flaky",
        seed=7,
        time_scale=0.0,  # account the network, don't sleep it
        retry=RetryPolicy(max_attempts=8),
    )
    scenario.server = flaky
    remote_keys, remote_ledger = run_q1(scenario)
    scenario.server = local_server

    report = flaky.report()
    status = "identical results" if remote_keys == local_keys else "MISMATCH"
    print(f"  {len(remote_keys)} joined pairs over the wire: {status}")
    print(
        f"  attempts={report['attempts']}  retries={report['retries']}  "
        f"failures={report['failures']}"
    )
    print(
        f"  priced ledger total: {remote_ledger.total:.2f}s "
        f"(in-process: {local_ledger.total:.2f}s)"
    )
    print(
        f"  simulated seconds wasted on retries: "
        f"{remote_ledger.seconds_retried:.2f}s (outside the total)"
    )
    print()

    # ------------------------------------------------------------------
    print("[2] degraded link: the circuit breaker refuses doomed calls")
    degraded = RemoteTextTransport(
        local_server,
        profile="degraded",
        seed=3,
        time_scale=0.0,
        retry=RetryPolicy(max_attempts=1),  # surface every failure
        breaker=CircuitBreaker(failure_threshold=3, recovery_time=0.05),
    )
    probe = TermQuery("title", "belief")
    outcomes = {"ok": 0, "failed": 0, "refused": 0}
    for _ in range(40):
        try:
            degraded.search(probe)
            outcomes["ok"] += 1
        except CircuitOpenError:
            outcomes["refused"] += 1
        except TransportError:
            outcomes["failed"] += 1
    print(
        f"  40 calls: {outcomes['ok']} answered, {outcomes['failed']} failed, "
        f"{outcomes['refused']} refused with the circuit open"
    )
    probes = 0
    while degraded.breaker.state != "closed" and probes < 10:
        time.sleep(0.06)  # let the recovery window pass, then probe
        probes += 1
        try:
            degraded.search(probe)
        except (CircuitOpenError, TransportError):
            continue
    print(
        f"  recovery: breaker {degraded.breaker.state} after "
        f"{probes} half-open probe window(s)"
    )
    transitions = degraded.report()["breaker_transitions"]
    print(f"  breaker transitions: {', '.join(transitions)}")
    print()

    # ------------------------------------------------------------------
    print("[3] wan link: concurrent batch dispatch overlaps frame latency")
    vocabulary = local_server.index.vocabulary("title")
    step = max(1, len(vocabulary) // 32)
    queries = [TermQuery("title", term) for term in vocabulary[::step][:32]]

    timings = {}
    for label, pool_size in (("serial", 1), ("pool=8", 8)):
        transport = RemoteTextTransport(
            local_server, profile="wan", seed=7, pool_size=pool_size
        )
        started = time.perf_counter()
        results = transport.search_batch(queries)
        timings[label] = time.perf_counter() - started
        transport.close()
        print(
            f"  {label:<7} {len(queries)} searches in {timings[label]:.3f}s wall "
            f"({transport.stats.frames_sent} frames, "
            f"{transport.channel.stats.simulated_seconds:.2f}s simulated wire)"
        )
        assert len(results) == len(queries)
    print(f"  concurrent speedup: {timings['serial'] / timings['pool=8']:.1f}x")


if __name__ == "__main__":
    main()
