"""Multi-join optimization: left-deep trees vs PrL trees (Section 6).

Optimizes the paper's Q5 — and the amplified Example-6.1 workload — in
three execution spaces:

- ``traditional``: left-deep only, all text predicates evaluated together;
- ``prl``: the paper's contribution — probe nodes as semi-join reducers;
- ``extended``: this library's superset (text-scan leaves, deferred
  text-match predicates).

Prints the chosen plan trees with cost annotations and executes each
plan to confirm the estimated ordering and identical results.

Run:  python examples/multi_join_optimization.py
"""

from repro.core import PlanEstimator, execute_plan, optimize_multijoin
from repro.workload import build_default_scenario
from repro.workload.scenarios import build_prl_scenario


def explore(scenario, query, title, spaces):
    print(f"=== {title}")
    baseline = None
    for space in spaces:
        context = scenario.context()
        estimator = PlanEstimator(query, context)
        optimized = optimize_multijoin(query, estimator, space=space)
        execution = execute_plan(optimized.plan, query, scenario.context())
        keys = execution.result_keys()
        if baseline is None:
            baseline = keys
        assert keys == baseline, "plans disagree on results!"
        print(
            f"\n[{space}] estimated {optimized.estimated_cost:.1f}s, "
            f"measured {execution.total_cost():.1f}s, "
            f"{len(execution.rows)} rows, "
            f"{optimized.join_tasks} join tasks"
        )
        print(optimized.describe())
    print()


def main() -> None:
    scenario = build_default_scenario(seed=7)
    explore(
        scenario,
        scenario.q5(),
        "Q5: students co-authoring with faculty from another department",
        ("traditional", "prl", "extended"),
    )

    prl_scenario, query = build_prl_scenario()
    explore(
        prl_scenario,
        query,
        "PrL showcase: probe-reduce a duplicate-heavy relation first",
        ("traditional", "prl"),
    )


if __name__ == "__main__":
    main()
