"""A million-document-shaped corpus served from one compact index file.

The in-memory :class:`InvertedIndex` re-tokenizes the whole corpus at
every startup and holds every posting in RAM; the disk-backed index
(:mod:`repro.textsys.diskindex`) builds once — streaming documents
through a bounded buffer, spilling sorted segment runs, and k-way
merging them into delta + group-varint compressed posting blocks — and
then serves queries by reading only the blocks a query touches, through
a byte-budgeted LRU block cache.

The walk-through below builds a corpus, prints the index file's
statistics, and queries it with a deliberately tiny cache to make the
physical-versus-charged distinction visible: *charged* page reads
(the paper's cost model) are identical to the in-memory engine's,
while *physical* block fetches shrink as the cache warms.

Run:  python examples/disk_corpus.py
"""

import tempfile
from pathlib import Path

from repro.bench.reporting import ascii_table
from repro.textsys.diskindex import DiskInvertedIndex, build_disk_index
from repro.textsys.documents import DocumentStore
from repro.textsys.engine import evaluate
from repro.textsys.inverted_index import InvertedIndex
from repro.textsys.parser import parse_search
from repro.workload import iter_synthetic_documents

DOCUMENTS = 3_000
CACHE_BUDGET = 64 * 1024  # deliberately tiny: 64 KiB of decoded blocks

QUERIES = [
    "TI='algorithm'",
    "AB='database' and AB='query'",
    "TI='system' or AB='index'",
    "AB='retrieval' and AB='parallel' and not TI='cache'",
]


def build(tmp: Path) -> Path:
    print(f"1. Building a {DOCUMENTS}-document index (streamed, never in RAM)")
    path = build_disk_index(
        iter_synthetic_documents(DOCUMENTS, seed=7),
        ["title", "abstract"],
        tmp / "corpus.idx",
    )
    size = path.stat().st_size
    print(f"   -> {path.name}: {size / 1e6:.2f} MB on disk")
    return path


def show_stats(path: Path) -> None:
    print()
    print("2. What the file holds")
    with DiskInvertedIndex(path, cache_budget=0) as index:
        stats = index.stats()
        rows = [
            ["documents", stats["doc_count"]],
            ["total postings", stats["total_postings"]],
            ["bytes / posting", stats["bytes_per_posting"]],
            ["block size", stats["block_size"]],
        ] + [
            [f"vocabulary[{field}]", count]
            for field, count in stats["vocabulary"].items()
        ]
        print(ascii_table(["property", "value"], rows))


def query(path: Path) -> None:
    print()
    print(f"3. Querying with a {CACHE_BUDGET // 1024} KiB block cache")

    # The in-memory twin, for the charge-identity check (DESIGN inv. 13).
    store = DocumentStore(["title", "abstract"], short_fields=["title"])
    for document in iter_synthetic_documents(DOCUMENTS, seed=7):
        store.add(document)
    memory = InvertedIndex(store)

    with DiskInvertedIndex(path, cache_budget=CACHE_BUDGET) as disk:
        rows = []
        for expression in QUERIES:
            node = parse_search(expression)
            memory_outcome = evaluate(memory, node)
            disk_outcome = evaluate(disk, node)
            assert (
                list(disk_outcome.postings.doc_array)
                == list(memory_outcome.postings.doc_array)
            ), expression
            assert (
                disk_outcome.postings_processed
                == memory_outcome.postings_processed
            ), expression
            rows.append(
                [
                    expression,
                    disk_outcome.doc_count(),
                    disk_outcome.postings_processed,
                ]
            )
        print(ascii_table(["expression", "matches", "postings"], rows))
        assert disk.pages_read == memory.pages_read
        print(
            f"   charged page reads: disk={disk.pages_read} "
            f"memory={memory.pages_read}  (identical results, "
            "identical charges)"
        )

        cold = disk.io_stats()
        for expression in QUERIES:  # warm pass: same charges, fewer fetches
            evaluate(disk, parse_search(expression))
        warm = disk.io_stats()
        cache = warm["cache"]
        print(
            f"   physical I/O: {cold['block_fetches']} block fetches cold, "
            f"+{warm['block_fetches'] - cold['block_fetches']} warm; "
            f"cache hit rate {cache['hit_rate']:.0%}, "
            f"{cache['evictions']} evictions under the tiny budget"
        )


def main() -> None:
    print("Disk-backed compressed inverted index")
    print("=====================================")
    with tempfile.TemporaryDirectory() as tmp_name:
        tmp = Path(tmp_name)
        path = build(tmp)
        show_stats(path)
        query(path)
    print()
    print("Done: one immutable file, bounded memory, identical charges.")


if __name__ == "__main__":
    main()
