"""Beyond text systems (Section 8): an image-metadata external manager.

"The join methods based on probing rely on the fact that each predicate
on the foreign system must be evaluated by index lookup which is true of
storage systems for image and other multimedia objects as well …  Thus,
the techniques presented in this paper apply to a broader class of
foreign systems beyond Boolean text systems."

This example instantiates that claim: the external manager is an *image
library* whose records carry indexed metadata fields (tags, photographer,
location, camera) instead of bibliographic text.  Because the library's
query interface has the same shape — field-scoped exact terms combined
with Boolean connectives, evaluated by index lookup, answers in short
form with long-form retrieval by id — the very same join methods, cost
model and optimizer run over it unchanged.

The workload: a newspaper's `assignment(story, reporter, city)` table
joined against the photo archive to find stock photos shot in the
assignment's city by the assigned reporter.

Run:  python examples/image_library.py
"""

import random

from repro.core import (
    JoinContext,
    TextJoinPredicate,
    TextJoinQuery,
    TextSelection,
    build_cost_inputs,
    enumerate_method_choices,
)
from repro.core.explain import explain_query
from repro.gateway import TextClient
from repro.relational import Catalog, DataType, Schema
from repro.textsys import BooleanTextServer, DocumentStore

CITIES = ["oslo", "lagos", "lima", "osaka", "quito", "perth", "dakar"]
PHOTOGRAPHERS = [f"photog{i:02d}" for i in range(12)]
SUBJECTS = ["protest", "election", "flood", "market", "stadium", "harbor"]


def build_photo_archive(seed: int = 17) -> BooleanTextServer:
    """4000 photo records with indexed metadata fields."""
    rng = random.Random(seed)
    store = DocumentStore(
        ["tags", "photographer", "location", "camera"],
        short_fields=["tags", "photographer", "location"],
    )
    for i in range(4000):
        store.add_record(
            f"img{i:05d}",
            tags=" ".join(rng.sample(SUBJECTS, rng.randint(1, 3))),
            photographer=rng.choice(PHOTOGRAPHERS),
            location=rng.choice(CITIES),
            camera=rng.choice(["alpha9", "z8", "r5"]),
        )
    return BooleanTextServer(store)


def build_newsroom(seed: int = 18) -> Catalog:
    rng = random.Random(seed)
    catalog = Catalog()
    assignment = catalog.create_table(
        "assignment",
        Schema.of(
            ("story", DataType.VARCHAR),
            ("reporter", DataType.VARCHAR),
            ("city", DataType.VARCHAR),
        ),
    )
    for i in range(80):
        assignment.insert(
            [
                f"story{i:03d}",
                rng.choice(PHOTOGRAPHERS + ["writer01", "writer02"]),
                rng.choice(CITIES),
            ]
        )
    return catalog


def main() -> None:
    server = build_photo_archive()
    catalog = build_newsroom()
    context = JoinContext(catalog, TextClient(server))

    # Election photos shot in the assignment's city by its own reporter:
    # two foreign join predicates + one selection — exactly the Q3/Q4
    # regime, on an image store.
    query = TextJoinQuery(
        relation="assignment",
        join_predicates=(
            TextJoinPredicate("assignment.city", "location"),
            TextJoinPredicate("assignment.reporter", "photographer"),
        ),
        text_selections=(TextSelection("election", "tags"),),
    )

    inputs = build_cost_inputs(query, context)
    print(explain_query(query, inputs))
    print()

    choices = enumerate_method_choices(query, inputs)
    winner = choices[0]
    execution = winner.method.execute(query, JoinContext(catalog, TextClient(server)))
    print(
        f"Executed {winner.name}: {len(execution.pairs)} matches, "
        f"{execution.cost.searches} invocations, "
        f"{execution.cost.total:.2f}s simulated"
    )
    for pair in execution.pairs[:5]:
        print(
            f"  {pair.row['assignment.story']} <- {pair.document.docid} "
            f"({pair.document.field('location')}, "
            f"by {pair.document.field('photographer')})"
        )

    # Sanity: TS agrees (method equivalence holds on image metadata too).
    from repro.core import TupleSubstitution

    ts = TupleSubstitution().execute(query, JoinContext(catalog, TextClient(server)))
    assert ts.result_keys() == execution.result_keys()
    print("\nTS cross-check: identical results "
          f"({ts.cost.total:.2f}s vs {execution.cost.total:.2f}s — "
          f"{ts.cost.total / max(execution.cost.total, 1e-9):.1f}x slower)")


if __name__ == "__main__":
    main()
