"""The full front-to-back path: SQL text → EXPLAIN → adaptive execution.

Feeds the paper's own query strings (Section 2.2 / Section 3 examples)
through the surface parser, prints the optimizer's EXPLAIN report for
each, and executes with runtime guards — the workflow a downstream user
of the integrated system would actually follow.

Run:  python examples/sql_interface.py
"""

from repro.core import build_cost_inputs, execute_adaptively, explain_query
from repro.workload import build_default_scenario

QUERIES = {
    "Q1 (senior AI students x 'belief update')": """
        select * from student, mercury
        where student.area = 'AI' and student.year > 3
        and 'belief update' in mercury.title
        and student.name in mercury.author
    """,
    "Q3 (NSF projects: name in title, member in author)": """
        select project.member, project.name, mercury.docid
        from project, mercury
        where project.sponsor = 'NSF'
        and project.name in mercury.title
        and project.member in mercury.author
    """,
    "Q4 (students co-authoring with their advisors)": """
        select * from student, mercury
        where student.area = 'distributed systems'
        and student.advisor in mercury.author
        and student.name in mercury.author
    """,
}


def main() -> None:
    from repro.core.surface import parse_query

    scenario = build_default_scenario(seed=7)
    for label, sql in QUERIES.items():
        print("=" * 72)
        print(label)
        print(sql.strip())
        print()
        query = parse_query(sql)
        context = scenario.context()
        inputs = build_cost_inputs(query, context)
        print(explain_query(query, inputs))
        print()
        adaptive = execute_adaptively(query, scenario.context(), inputs)
        attempt_trail = " -> ".join(
            f"{attempt.method}{' (aborted)' if attempt.aborted else ''}"
            for attempt in adaptive.attempts
        )
        print(
            f"Executed: {attempt_trail}; "
            f"{len(adaptive.execution.pairs)} results, "
            f"{adaptive.total_cost:.2f}s simulated"
        )
        for pair in adaptive.execution.pairs[:3]:
            first_column = pair.row.schema.names()[0]
            print(f"  {pair.row[first_column]} <- {pair.document.docid}")
        print()


if __name__ == "__main__":
    main()
