"""The paper's motivating application: a hospital information system.

Section 1 cites a hospital system "that permits physicians to access
progress notes, medical literature, and drug formularies, in addition to
structured data from the patient's medical record" [YA94].  This example
builds that integration: a patient-record database joined against a
medical-literature text source, with the optimizer choosing execution
strategies per query.

Run:  python examples/hospital_records.py
"""

import random

from repro.core import (
    JoinContext,
    ResultShape,
    TextJoinPredicate,
    TextJoinQuery,
    TextSelection,
    build_cost_inputs,
    choose_join_method,
    enumerate_method_choices,
)
from repro.gateway import TextClient
from repro.relational import Catalog, DataType, Schema
from repro.relational.expressions import ColumnRef, Comparison, Literal
from repro.textsys import BooleanTextServer
from repro.workload import SyntheticCorpus

CONDITIONS = [
    "hypertension", "diabetes", "asthma", "migraine", "arrhythmia",
    "pneumonia", "anemia", "glaucoma", "dermatitis", "nephritis",
]
DRUGS = [
    "lisinopril", "metformin", "albuterol", "sumatriptan", "amiodarone",
    "azithromycin", "ferrous", "latanoprost", "hydrocortisone", "prednisone",
]


def build_system(seed: int = 3):
    rng = random.Random(seed)

    # The medical-literature text source: titles mention conditions,
    # abstracts mention drugs under study.
    corpus = SyntheticCorpus(2000, seed=seed + 1)
    studied = corpus.plant_pool(
        CONDITIONS, "title", selectivity=0.6, conditional_fanout=8
    )
    corpus.plant_pool(DRUGS, "abstract", selectivity=0.5, conditional_fanout=5)
    corpus.plant_phrase("clinical trial", "title", 60)
    corpus.pad_authors(per_document=2)
    store = corpus.build_store(short_fields=("title", "author", "year", "institution"))
    server = BooleanTextServer(store)

    # The patient-record database.
    catalog = Catalog()
    patient = catalog.create_table(
        "patient",
        Schema.of(
            ("patient_id", DataType.INTEGER),
            ("ward", DataType.VARCHAR),
            ("condition", DataType.VARCHAR),
            ("medication", DataType.VARCHAR),
        ),
    )
    for patient_id in range(300):
        patient.insert(
            [
                patient_id,
                rng.choice(("icu", "cardiology", "general")),
                rng.choice(CONDITIONS),
                rng.choice(DRUGS),
            ]
        )
    return catalog, server


def main() -> None:
    catalog, server = build_system()

    # "Which clinical-trial reports discuss the condition of any ICU
    # patient?"  One selective text selection + one join predicate.
    literature_query = TextJoinQuery(
        relation="patient",
        join_predicates=(TextJoinPredicate("patient.condition", "title"),),
        text_selections=(TextSelection("clinical trial", "title"),),
        relation_predicate=Comparison("=", ColumnRef("patient.ward"), Literal("icu")),
        shape=ResultShape.PAIRS,
    )

    # "Which reports discuss both a cardiology patient's condition and
    # their medication?"  Two join predicates: probing applies.
    drug_query = TextJoinQuery(
        relation="patient",
        join_predicates=(
            TextJoinPredicate("patient.condition", "title"),
            TextJoinPredicate("patient.medication", "abstract"),
        ),
        relation_predicate=Comparison(
            "=", ColumnRef("patient.ward"), Literal("cardiology")
        ),
        shape=ResultShape.PAIRS,
    )

    for label, query in (
        ("ICU conditions in clinical trials", literature_query),
        ("cardiology condition + medication", drug_query),
    ):
        print(f"=== {label}")
        context = JoinContext(catalog, TextClient(server))
        inputs = build_cost_inputs(query, context)
        choices = enumerate_method_choices(query, inputs)
        for choice in choices:
            print(f"  predicted {choice.estimate.total:9.2f}s  {choice.name}")
        winner = choose_join_method(query, inputs)
        execution = winner.method.execute(query, JoinContext(catalog, TextClient(server)))
        print(
            f"  -> executed {winner.name}: {len(execution.pairs)} matches, "
            f"measured {execution.cost.total:.2f}s "
            f"({execution.cost.searches} searches)"
        )
        for pair in execution.pairs[:5]:
            print(
                f"     patient {pair.row['patient.patient_id']} "
                f"({pair.row['patient.condition']}) <- "
                f"{pair.document.docid}: {pair.document.field('title')[:60]}"
            )
        print()


if __name__ == "__main__":
    main()
