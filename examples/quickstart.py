"""Quickstart: loose integration of a relational engine and a text system.

Builds a tiny university database and a bibliographic document
collection, then runs the same text-join query with several foreign-join
methods — all returning identical results at very different costs — and
finally lets the cost-based optimizer pick the method for you.

Run:  python examples/quickstart.py
"""

from repro.core import (
    JoinContext,
    ResultShape,
    SemiJoinRtp,
    TextJoinPredicate,
    TextJoinQuery,
    TextSelection,
    TupleSubstitution,
    RelationalTextProcessing,
    build_cost_inputs,
    choose_join_method,
)
from repro.gateway import TextClient
from repro.relational import Catalog, DataType, Schema
from repro.relational.expressions import ColumnRef, Comparison, Literal
from repro.textsys import BooleanTextServer, DocumentStore


def build_system():
    """One relation, one document collection, one metered gateway."""
    catalog = Catalog()
    student = catalog.create_table(
        "student",
        Schema.of(
            ("name", DataType.VARCHAR),
            ("area", DataType.VARCHAR),
            ("year", DataType.INTEGER),
        ),
    )
    student.insert_many(
        [
            ["radhika", "AI", 5],
            ["gravano", "AI", 4],
            ["kao", "databases", 2],
            ["pham", "AI", 6],
            ["desmedt", "theory", 3],
        ]
    )

    store = DocumentStore(
        ["title", "author", "abstract"], short_fields=["title", "author"]
    )
    store.add_record(
        "tr-001",
        title="Belief update in knowledge bases",
        author="radhika ullman",
        abstract="We study belief update operators...",
    )
    store.add_record(
        "tr-002",
        title="Querying text collections",
        author="gravano",
        abstract="Boolean retrieval over inverted indexes...",
    )
    store.add_record(
        "tr-003",
        title="Belief update revisited",
        author="pham",
        abstract="A critique of earlier belief update semantics...",
    )
    store.add_record(
        "tr-004",
        title="Unrelated systems work",
        author="someone else",
        abstract="Nothing to see here.",
    )
    server = BooleanTextServer(store)
    return catalog, server


def main() -> None:
    catalog, server = build_system()

    # The paper's Q1 shape: senior AI students who wrote about belief update.
    query = TextJoinQuery(
        relation="student",
        join_predicates=(TextJoinPredicate("student.name", "author"),),
        text_selections=(TextSelection("belief update", "title"),),
        relation_predicate=Comparison("=", ColumnRef("student.area"), Literal("AI")),
        shape=ResultShape.PAIRS,
    )

    print("Query:", query)
    print()
    for method in (TupleSubstitution(), RelationalTextProcessing(), SemiJoinRtp()):
        context = JoinContext(catalog, TextClient(server))
        execution = method.execute(query, context)
        print(f"{method.name:8s} cost={execution.cost.total:7.3f}s "
              f"(searches={execution.cost.searches})")
        for pair in execution.pairs:
            print(f"    {pair.row['student.name']}  <->  "
                  f"{pair.document.docid}: {pair.document.field('title')}")
        print()

    # Let the optimizer choose.
    context = JoinContext(catalog, TextClient(server))
    inputs = build_cost_inputs(query, context)
    choice = choose_join_method(query, inputs)
    print(f"Optimizer picks: {choice.name} "
          f"(predicted {choice.estimate.total:.3f}s)")


if __name__ == "__main__":
    main()
