"""The paper's evaluation scenario: a digital library (Mercury stand-in)
joined with a university CS-department database.

Reproduces the Table-2 experience interactively: runs every applicable
join method on the canonical queries Q1–Q4, prints measured costs next
to the cost model's predictions, and shows that the optimizer's choice
matches the measured winner.

Run:  python examples/digital_library.py
"""

from repro.bench import ranking_report, table2_rows
from repro.bench.reporting import ascii_table
from repro.workload import build_default_scenario


def main() -> None:
    print("Building the scenario (4000-document corpus, 330 students,")
    print("133 project members; statistics planted per EXPERIMENTS.md)...")
    scenario = build_default_scenario(seed=7)
    print(f"  text server: {scenario.server}")
    print()

    print("Canonical queries:")
    for query_id in ("q1", "q2", "q3", "q4"):
        print(f"  {query_id}: {scenario.query(query_id)!r}")
    print()

    rows = []
    for query_id, runs in table2_rows(scenario).items():
        for run in runs:
            rows.append(
                [
                    query_id,
                    run.method,
                    round(run.measured_cost, 2),
                    run.predicted_cost and round(run.predicted_cost, 2),
                    run.searches,
                    run.results,
                ]
            )
    print(
        ascii_table(
            ["query", "method", "measured (s)", "predicted (s)",
             "searches", "results"],
            rows,
            title="Table 2 — join method costs (simulated seconds)",
        )
    )
    print()

    print("Does the cost model predict the winner? (Section 7 claim)")
    for entry in ranking_report(scenario):
        status = "yes" if entry["winner_match"] else "NO"
        print(
            f"  {entry['query']}: winner match = {status}; "
            f"measured: {' < '.join(entry['measured_order'])}"
        )


if __name__ == "__main__":
    main()
