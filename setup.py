"""Legacy setup shim.

The environment has no ``wheel`` package, so PEP 517 editable installs
(`pip install -e .`) cannot build a wheel; this ``setup.py`` lets pip
fall back to the classic ``setup.py develop`` path.  All metadata lives
in ``pyproject.toml``.
"""

from setuptools import setup

setup()
